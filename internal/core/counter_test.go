package core

import (
	"sync"
	"testing"
	"time"

	"repro/internal/kvs"
	"repro/internal/proto"
)

// The striped counter's total must be exact under heavy concurrent
// increments from many goroutines — only the distribution over stripes is
// heuristic.
func TestReadCounterExactUnderConcurrency(t *testing.T) {
	var c readCounter
	const goroutines, per = 32, 10000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Load(); got != goroutines*per {
		t.Fatalf("counter total %d, want %d", got, goroutines*per)
	}
}

// benchEnv is a no-op Env for read-path microbenchmarks.
type benchEnv struct{}

func (benchEnv) Now() time.Duration        { return 0 }
func (benchEnv) Send(proto.NodeID, any)    {}
func (benchEnv) Complete(proto.Completion) {}

// BenchmarkReadLocalParallel pins the satellite claim for the striped
// fast-path counters: ReadLocal from all Ps at once must not serialize on a
// single counter cache line. Run with -benchmem — the path stays
// allocation-free (the stripe probe lives on the stack).
func BenchmarkReadLocalParallel(b *testing.B) {
	st := kvs.New(64)
	h := New(Config{ID: 0, View: proto.View{Epoch: 1, Members: []proto.NodeID{0, 1, 2}},
		Env: benchEnv{}, Store: st})
	const keys = 256
	for k := proto.Key(0); k < keys; k++ {
		st.Update(k, kvs.Entry{Value: proto.Value("v"), TS: proto.TS{Version: 2}, State: kvs.Valid})
	}
	b.ReportAllocs()
	b.SetParallelism(2) // 2×GOMAXPROCS readers: past the physical core count
	b.RunParallel(func(pb *testing.PB) {
		k := proto.Key(0)
		for pb.Next() {
			if _, ok := h.ReadLocal(k % keys); !ok {
				b.Fatal("fast path missed on a Valid key")
			}
			k++
		}
	})
	if _, hits, _ := h.ReadStats(); hits == 0 {
		b.Fatal("no hits recorded")
	}
}

// BenchmarkReadLocalSerial is the single-goroutine baseline for the same
// path (no contention; measures the raw gate-load + store-lookup cost).
func BenchmarkReadLocalSerial(b *testing.B) {
	st := kvs.New(64)
	h := New(Config{ID: 0, View: proto.View{Epoch: 1, Members: []proto.NodeID{0, 1, 2}},
		Env: benchEnv{}, Store: st})
	st.Update(1, kvs.Entry{Value: proto.Value("v"), TS: proto.TS{Version: 2}, State: kvs.Valid})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, ok := h.ReadLocal(1); !ok {
			b.Fatal("fast path missed")
		}
	}
}
