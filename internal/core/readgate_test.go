package core

import (
	"testing"
	"time"

	"repro/internal/kvs"
	"repro/internal/proto"
)

func TestReadGatePublishedOnConstruction(t *testing.T) {
	h := newHarness(t, 3, nil)
	for id, n := range h.nodes {
		g := n.ReadGate()
		if !g.Allowed() {
			t.Fatalf("node %d: gate shut on a fresh operational replica", id)
		}
		if g.Epoch() != 1 {
			t.Fatalf("node %d: gate epoch %d, want 1", id, g.Epoch())
		}
	}
}

func TestReadGateShutForLearnerAndNoLSC(t *testing.T) {
	learner := New(Config{
		ID: 9, View: proto.View{Epoch: 1, Members: []proto.NodeID{0}, Learners: []proto.NodeID{9}},
		Env: &testEnv{h: &harness{done: map[proto.NodeID][]proto.Completion{}}, id: 9}, Learner: true,
	})
	if learner.ReadGate().Allowed() {
		t.Fatal("learner's gate open: fast-path reads on a catching-up shadow replica")
	}
	h := newHarness(t, 3, func(c *Config) { c.NoLSC = true })
	if h.nodes[0].ReadGate().Allowed() {
		t.Fatal("NoLSC gate open: fast path would bypass the §8 membership proof")
	}
	// NoLSC reads must also report as fast-path misses, never hits.
	if _, ok := h.nodes[0].ReadLocal(1); ok {
		t.Fatal("ReadLocal served a read in NoLSC mode")
	}
	if _, hits, misses := h.nodes[0].ReadStats(); hits != 0 || misses != 1 {
		t.Fatalf("hits=%d misses=%d, want 0/1", hits, misses)
	}
}

func TestReadGateFollowsOperationalAndViewTransitions(t *testing.T) {
	h := newHarness(t, 3, nil)
	n := h.nodes[0]
	n.SetOperational(false)
	if n.ReadGate().Allowed() {
		t.Fatal("gate open without an RM lease")
	}
	n.SetOperational(true)
	if !n.ReadGate().Allowed() {
		t.Fatal("gate shut after the lease came back")
	}
	// The live runtime shuts the gate before handing over an m-update;
	// OnViewChange must reopen it under the new epoch.
	n.ReadGate().Shut()
	if n.ReadGate().Allowed() {
		t.Fatal("Shut did not shut")
	}
	n.OnViewChange(proto.View{Epoch: 2, Members: []proto.NodeID{0, 1, 2}})
	if !n.ReadGate().Allowed() || n.ReadGate().Epoch() != 2 {
		t.Fatalf("gate after view change: allowed=%v epoch=%d, want open at 2",
			n.ReadGate().Allowed(), n.ReadGate().Epoch())
	}
	// Removal from the membership keeps the gate shut.
	n.OnViewChange(proto.View{Epoch: 3, Members: []proto.NodeID{1, 2}})
	if n.ReadGate().Allowed() {
		t.Fatal("gate open on a replica removed from the view")
	}
}

// TestReadGateShutThroughLearnerCatchUp walks a shadow replica through the
// full §3.4 recovery arc: the gate stays shut while it joins and while it
// catches up (every ReadLocal reporting a miss), and opens only at the
// promoting m-update.
func TestReadGateShutThroughLearnerCatchUp(t *testing.T) {
	h := newHarness(t, 3, nil)
	h.write(0, 1, "v")
	h.run()
	l := h.addLearner(3)
	if l.ReadGate().Allowed() {
		t.Fatal("gate open on a freshly joined learner")
	}
	for i := 0; i < 20 && !l.CaughtUp(); i++ {
		h.advance(15 * time.Millisecond)
		h.run()
	}
	if !l.CaughtUp() {
		t.Fatal("learner never caught up")
	}
	if l.ReadGate().Allowed() {
		t.Fatal("gate open on a caught-up but unpromoted learner")
	}
	if _, ok := l.ReadLocal(1); ok {
		t.Fatal("ReadLocal served a read on a learner")
	}
	if _, hits, misses := l.ReadStats(); hits != 0 || misses == 0 {
		t.Fatalf("learner hits=%d misses=%d, want 0 hits", hits, misses)
	}
	// Promote: full member in the next view.
	nv := proto.View{Epoch: h.view.Epoch + 1, Members: []proto.NodeID{0, 1, 2, 3}}
	h.installView(nv)
	if !l.ReadGate().Allowed() {
		t.Fatal("gate shut after promotion to serving member")
	}
	if v, ok := l.ReadLocal(1); !ok || string(v) != "v" {
		t.Fatalf("promoted learner fast read: %q %v", v, ok)
	}
}

func TestReadLocalServesValidAndRejectsInvalid(t *testing.T) {
	h := newHarness(t, 3, nil)
	n := h.nodes[0]
	n.Store().Update(5, kvs.Entry{Value: proto.Value("v"), TS: proto.TS{Version: 2}, State: kvs.Valid})
	n.Store().Update(6, kvs.Entry{Value: proto.Value("w"), TS: proto.TS{Version: 2}, State: kvs.Invalid})

	if v, ok := n.ReadLocal(5); !ok || string(v) != "v" {
		t.Fatalf("valid key: %q %v", v, ok)
	}
	if _, ok := n.ReadLocal(6); ok {
		t.Fatal("ReadLocal served an Invalid key")
	}
	// A missing key reads as the store's implicit initial state, as Submit
	// treats it.
	if v, ok := n.ReadLocal(7); !ok || v != nil {
		t.Fatalf("missing key: %q %v", v, ok)
	}
	reads, hits, misses := n.ReadStats()
	if reads != 2 || hits != 2 || misses != 1 {
		t.Fatalf("reads=%d hits=%d misses=%d, want 2/2/1", reads, hits, misses)
	}
	m := n.Metrics()
	if m.Reads != 2 || m.FastPathReads != 2 || m.FastPathMisses != 1 {
		t.Fatalf("metrics snapshot %+v disagrees with ReadStats", m)
	}
}
