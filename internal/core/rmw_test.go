package core

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/proto"
)

func TestFAACommits(t *testing.T) {
	h := newHarness(t, 3, nil)
	op := h.faa(0, 1, 5)
	h.run()
	c := h.completion(0, op)
	if c.Status != proto.OK || proto.DecodeInt64(c.Value) != 0 {
		t.Fatalf("FAA completion: %+v (want old value 0)", c)
	}
	e := h.requireConverged(1)
	if proto.DecodeInt64(e.Value) != 5 {
		t.Fatalf("counter=%d want 5", proto.DecodeInt64(e.Value))
	}
	// RMWs advance the version by 1 (writes by 2), §3.6 CTS.
	if e.TS.Version != 1 {
		t.Fatalf("RMW version=%d want 1", e.TS.Version)
	}
}

func TestSequentialFAAAccumulate(t *testing.T) {
	h := newHarness(t, 3, nil)
	var last proto.Completion
	for i := 0; i < 10; i++ {
		op := h.faa(proto.NodeID(i%3), 1, 1)
		h.run()
		last = h.completion(proto.NodeID(i%3), op)
	}
	if proto.DecodeInt64(last.Value) != 9 {
		t.Fatalf("last FAA old value=%d want 9", proto.DecodeInt64(last.Value))
	}
	if e := h.requireConverged(1); proto.DecodeInt64(e.Value) != 10 {
		t.Fatalf("counter=%d", proto.DecodeInt64(e.Value))
	}
}

func TestCASSuccessAndFailure(t *testing.T) {
	h := newHarness(t, 3, nil)
	h.write(0, 1, "a")
	h.run()

	ok := h.cas(1, 1, "a", "b")
	h.run()
	if c := h.completion(1, ok); c.Status != proto.OK {
		t.Fatalf("matching CAS: %+v", c)
	}
	if e := h.requireConverged(1); string(e.Value) != "b" {
		t.Fatalf("value=%q", e.Value)
	}

	fail := h.cas(2, 1, "a", "c") // expects stale value
	h.run()
	c := h.completion(2, fail)
	if c.Status != proto.CASFailed || string(c.Value) != "b" {
		t.Fatalf("failed CAS must return observed value: %+v", c)
	}
	if e := h.requireConverged(1); string(e.Value) != "b" {
		t.Fatal("failed CAS mutated state")
	}
	// Failed CAS is resolved locally: no protocol messages.
	h.requireNoInflight()
}

// §3.6: a write racing an RMW always wins — the write's +2 version increment
// guarantees it outranks the RMW's +1, so the RMW aborts.
func TestWriteRacingRMWAbortsTheRMW(t *testing.T) {
	h := newHarness(t, 3, nil)
	rmwOp := h.faa(0, 1, 7)    // ts (1,0)
	wrOp := h.write(2, 1, "w") // ts (2,2)
	h.run()
	for i := 0; i < 5; i++ {
		h.advance(15 * time.Millisecond)
		h.run()
	}
	if c := h.completion(0, rmwOp); c.Status != proto.Aborted {
		t.Fatalf("RMW should abort: %+v", c)
	}
	if c := h.completion(2, wrOp); c.Status != proto.OK {
		t.Fatalf("write must commit: %+v", c)
	}
	if h.nodes[0].Metrics().RMWAborts != 1 {
		t.Fatal("abort not counted")
	}
	e := h.requireConverged(1)
	if string(e.Value) != "w" {
		t.Fatalf("value=%q want the write's", e.Value)
	}
}

// §3.6: of two concurrent RMWs to a key, exactly one commits (the higher
// node id); the other aborts.
func TestConcurrentRMWsExactlyOneCommits(t *testing.T) {
	h := newHarness(t, 3, nil)
	lo := h.faa(0, 1, 1) // ts (1,0)
	hi := h.faa(2, 1, 1) // ts (1,2)
	h.run()
	for i := 0; i < 5; i++ {
		h.advance(15 * time.Millisecond)
		h.run()
	}
	cLo := h.completion(0, lo)
	cHi := h.completion(2, hi)
	if cLo.Status != proto.Aborted {
		t.Fatalf("low-cid RMW: %+v want Aborted", cLo)
	}
	if cHi.Status != proto.OK {
		t.Fatalf("high-cid RMW: %+v want OK", cHi)
	}
	e := h.requireConverged(1)
	if proto.DecodeInt64(e.Value) != 1 {
		t.Fatalf("counter=%d want exactly one increment", proto.DecodeInt64(e.Value))
	}
}

// The FRMW-ACK rule: a follower that has already seen a higher timestamp
// answers a losing RMW's INV with its local state (an INV), not an ACK.
func TestLosingRMWReceivesStateINV(t *testing.T) {
	h := newHarness(t, 3, nil)
	h.write(1, 1, "newer") // ts (2,1)
	h.run()
	// Node 0 hasn't seen... actually it has; force the race by injecting an
	// RMW INV with a stale timestamp directly.
	h.nodes[1].Deliver(0, INV{Epoch: 1, Key: 1, TS: proto.TS{Version: 1, CID: 0}, Value: proto.EncodeInt64(1), RMW: true})
	// Node 1 must respond with its local state as an INV, not an ACK.
	if len(h.msgs) != 1 {
		t.Fatalf("%d messages, want 1", len(h.msgs))
	}
	reply, is := h.msgs[0].msg.(INV)
	if !is {
		t.Fatalf("reply is %T, want INV", h.msgs[0].msg)
	}
	if reply.TS != (proto.TS{Version: 2, CID: 1}) || string(reply.Value) != "newer" {
		t.Fatalf("state INV: %+v", reply)
	}
}

// CRMW-replay: after a membership reconfiguration, a pending RMW resets its
// gathered ACKs and re-broadcasts, so its commitment is re-established
// against the new membership.
func TestRMWReplaysAfterViewChange(t *testing.T) {
	h := newHarness(t, 5, nil)
	op := h.faa(0, 1, 1)
	// Let two followers ACK; hold the others.
	h.step()                                                               // INV -> 1
	h.step()                                                               // INV -> 2
	h.dropWhere(func(e envelope) bool { _, is := e.msg.(INV); return is }) // INVs to 3,4 lost
	h.run()                                                                // ACKs from 1,2 arrive
	if h.hasCompletion(0, op) {
		t.Fatal("RMW committed early")
	}
	// Node 4 fails; view changes. The RMW must reset ACKs and rebroadcast
	// to everyone (1,2,3).
	h.crash(4)
	h.removeFromView(4)
	invTargets := map[proto.NodeID]bool{}
	for _, e := range h.msgs {
		if _, is := e.msg.(INV); is {
			invTargets[e.to] = true
		}
	}
	for _, want := range []proto.NodeID{1, 2, 3} {
		if !invTargets[want] {
			t.Fatalf("CRMW-replay must re-INV node %d (targets=%v)", want, invTargets)
		}
	}
	h.run()
	if c := h.completion(0, op); c.Status != proto.OK {
		t.Fatalf("RMW after view change: %+v", c)
	}
	h.requireConverged(1)
}

// Mixed writes and RMWs under shuffled delivery and random loss must still
// converge, commit all writes, and commit at most one of each concurrent
// RMW batch.
func TestRMWStressConverges(t *testing.T) {
	for seed := int64(0); seed < 15; seed++ {
		rng := rand.New(rand.NewSource(seed))
		h := newHarness(t, 3, nil)
		type issued struct {
			node proto.NodeID
			op   uint64
			rmw  bool
		}
		var ops []issued
		for i := 0; i < 12; i++ {
			id := proto.NodeID(rng.Intn(3))
			if rng.Intn(2) == 0 {
				ops = append(ops, issued{id, h.faa(id, 1, 1), true})
			} else {
				ops = append(ops, issued{id, h.write(id, 1, string(rune('a'+i))), false})
			}
			if rng.Intn(3) == 0 {
				h.runShuffled(rng)
			}
		}
		for round := 0; round < 40; round++ {
			h.dropWhere(func(envelope) bool { return rng.Float64() < 0.1 })
			h.runShuffled(rng)
			h.advance(11 * time.Millisecond)
		}
		h.run()
		h.requireConverged(1)
		for _, is := range ops {
			c := h.completion(is.node, is.op)
			if !is.rmw && c.Status != proto.OK {
				t.Fatalf("seed %d: write aborted: %+v", seed, c)
			}
			if is.rmw && c.Status != proto.OK && c.Status != proto.Aborted {
				t.Fatalf("seed %d: rmw status: %+v", seed, c)
			}
		}
	}
}

func TestRMWThenWriteVersionSpacing(t *testing.T) {
	h := newHarness(t, 3, nil)
	h.faa(0, 1, 1) // version 1
	h.run()
	h.write(1, 1, "w") // version 3
	h.run()
	e := h.requireConverged(1)
	if e.TS.Version != 3 {
		t.Fatalf("version=%d want 3 (1 for RMW + 2 for write)", e.TS.Version)
	}
}
