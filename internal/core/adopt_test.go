package core

import (
	"bytes"
	"math"
	"testing"
	"time"

	"repro/internal/kvs"
	"repro/internal/proto"
	"repro/internal/refbuf"
)

// ownedINV builds an INV whose value is a zero-copy sub-slice of a pooled
// frame buffer, exactly as wings decode produces: the INV holds one
// reference on the buffer (here the Get reference itself).
func ownedINV(pool *refbuf.Pool, key proto.Key, ver uint32, val []byte) INV {
	fb := pool.Get(len(val))
	copy(fb.Bytes(), val)
	b := fb.Bytes()
	return INV{
		Epoch: 1, Key: key, TS: proto.TS{Version: ver},
		Value: proto.Value(b[0:len(val):len(val)]),
		Owner: fb,
	}
}

func newFollower(t testing.TB, st *kvs.Store) *Hermes {
	t.Helper()
	return New(Config{
		ID: 1, View: proto.View{Epoch: 1, Members: []proto.NodeID{0, 1, 2}},
		Env: benchEnv{}, Store: st,
	})
}

// TestINVAdoptZeroCopy pins the tentpole: an owner-backed INV's value is
// adopted into the store without a copy (the published entry aliases the
// frame buffer), and replacing the entry releases the frame back to its
// pool.
func TestINVAdoptZeroCopy(t *testing.T) {
	st := kvs.New(16)
	h := newFollower(t, st)
	pool := refbuf.NewPool()

	inv := ownedINV(pool, 7, 2, []byte("hello-zero-copy"))
	fb := inv.Owner
	h.Deliver(0, inv)

	e, ok := st.Get(7)
	if !ok || string(e.Value) != "hello-zero-copy" {
		t.Fatalf("entry after adopt: %+v ok=%v", e, ok)
	}
	if &e.Value[0] != &fb.Bytes()[0] {
		t.Fatal("adopted value was copied; want it to alias the frame buffer")
	}
	if e.Owner != fb {
		t.Fatalf("entry owner = %p, want the frame buffer %p", e.Owner, fb)
	}
	if got := fb.Refs(); got != 1 {
		t.Fatalf("frame refs after adopt = %d, want 1 (held by the store)", got)
	}

	// A higher-timestamped INV replaces the entry; the old frame's reference
	// must drop to zero (released back to the pool).
	h.Deliver(0, ownedINV(pool, 7, 4, []byte("successor")))
	if got := fb.Refs(); got != 0 {
		t.Fatalf("replaced frame refs = %d, want 0", got)
	}
	if e, _ := st.Get(7); string(e.Value) != "successor" {
		t.Fatalf("entry after replacement: %q", e.Value)
	}
}

// TestINVDropPathsReleaseOwner covers the three non-adopt paths of onINV —
// stale epoch, outranked/duplicate timestamp, and the FRMW-ACK reply — each
// of which must spend the INV's frame reference instead of leaking it.
func TestINVDropPathsReleaseOwner(t *testing.T) {
	st := kvs.New(16)
	h := newFollower(t, st)
	pool := refbuf.NewPool()

	// Seed the key at version 6 so lower timestamps lose.
	h.Deliver(0, ownedINV(pool, 9, 6, []byte("current")))

	t.Run("stale epoch", func(t *testing.T) {
		inv := ownedINV(pool, 9, 8, []byte("x"))
		inv.Epoch = 99
		fb := inv.Owner
		h.Deliver(0, inv)
		if got := fb.Refs(); got != 0 {
			t.Fatalf("refs after stale-epoch drop = %d, want 0", got)
		}
	})
	t.Run("outranked duplicate", func(t *testing.T) {
		inv := ownedINV(pool, 9, 4, []byte("old"))
		fb := inv.Owner
		h.Deliver(0, inv)
		if got := fb.Refs(); got != 0 {
			t.Fatalf("refs after outranked drop = %d, want 0", got)
		}
	})
	t.Run("FRMW-ACK reply", func(t *testing.T) {
		inv := ownedINV(pool, 9, 5, []byte("rmw"))
		inv.RMW = true
		fb := inv.Owner
		h.Deliver(0, inv)
		if got := fb.Refs(); got != 0 {
			t.Fatalf("refs after FRMW-ACK drop = %d, want 0", got)
		}
	})
}

// TestChunkRespDoesNotAliasStore is the chunk-transfer aliasing regression:
// onChunkReq must copy-or-retain owner-backed values at the boundary. Without
// that, the ChunkResp ships the live store slice; once the entry is replaced
// and the frame buffer recycled, the learner would receive whatever the
// pool's next frame holds.
func TestChunkRespDoesNotAliasStore(t *testing.T) {
	st := kvs.New(16)
	h := newFollower(t, st)
	pool := refbuf.NewPool()

	inv := ownedINV(pool, 3, 2, []byte("chunked-value"))
	fb := inv.Owner
	h.Deliver(0, inv)
	// Validate so Range reports it Valid (state transfer cares either way).
	h.Deliver(0, VAL{Epoch: 1, Key: 3, TS: proto.TS{Version: 2}})

	// Capture the outgoing ChunkResp instead of dropping it.
	var resp ChunkResp
	h.env = captureEnv{onSend: func(msg any) {
		if r, ok := msg.(ChunkResp); ok {
			resp = r
		}
	}}
	h.onChunkReq(2, ChunkReq{Epoch: 1, Cursor: 0, MaxKeys: 16})
	if len(resp.Recs) != 1 || string(resp.Recs[0].Value) != "chunked-value" {
		t.Fatalf("chunk response: %+v", resp)
	}

	// Replace the entry (frame released, refs hit zero) and scribble the
	// recycled frame buffer — what an unrelated inbound frame would do.
	h.env = benchEnv{}
	h.Deliver(0, ownedINV(pool, 3, 4, []byte("newer")))
	if fb.Refs() != 0 {
		t.Fatalf("frame still pinned after replacement: refs=%d", fb.Refs())
	}
	scribble := pool.Get(32)
	for i := range scribble.Bytes() {
		scribble.Bytes()[i] = 0xEE
	}

	if string(resp.Recs[0].Value) != "chunked-value" {
		t.Fatalf("chunk record mutated after frame recycle: %q", resp.Recs[0].Value)
	}
	scribble.Release()
}

// captureEnv records sends for boundary tests.
type captureEnv struct{ onSend func(msg any) }

func (captureEnv) Now() time.Duration           { return 0 }
func (e captureEnv) Send(_ proto.NodeID, m any) { e.onSend(m) }
func (captureEnv) Complete(proto.Completion)    {}

// TestINVAdoptAllocsSizeIndependent is the testing.AllocsPerRun satellite:
// the decode→store-adopt path performs zero per-value-byte allocations. The
// irreducible steady-state allocations (the RCU *Entry publication and the
// ACK's interface boxing into Env.Send) are size-independent, so the
// assertion is equality across a 128× value-size spread — a copy anywhere in
// the path would show up as extra allocations at 4 KiB.
func TestINVAdoptAllocsSizeIndependent(t *testing.T) {
	measure := func(valSize int) float64 {
		st := kvs.New(16)
		h := newFollower(t, st)
		pool := refbuf.NewPool()
		version := uint32(0)
		deliver := func() {
			version += 2
			val := make([]byte, valSize) // outside the measured path in real decode
			h.Deliver(0, ownedINV(pool, 11, version, val))
		}
		for i := 0; i < 32; i++ {
			deliver() // warm the pool, the store slot, and the meta-free path
		}
		return testing.AllocsPerRun(200, deliver)
	}
	small := measure(32)
	large := measure(32 * 128)
	// The make() above is one alloc in both runs; subtract nothing, just
	// compare. Round to absorb sync.Pool's occasional per-P cache miss.
	if math.Round(small) != math.Round(large) {
		t.Fatalf("adopt allocs scale with value size: %v at 32B vs %v at 4KiB", small, large)
	}
	if small > 4.5 {
		t.Fatalf("adopt path allocates %v per op; want the irreducible few", small)
	}
}

// BenchmarkINVAdopt measures the owner-backed INV receive path end to end
// (onINV → applyINV → store adoption), the companion to
// BenchmarkReadLocalParallel on the write side of the zero-copy value path.
// Run with -benchmem: B/op must not scale with the value size.
func BenchmarkINVAdopt(b *testing.B) {
	for _, size := range []int{32, 4096} {
		b.Run(map[int]string{32: "32B", 4096: "4KiB"}[size], func(b *testing.B) {
			st := kvs.New(16)
			h := newFollower(b, st)
			pool := refbuf.NewPool()
			val := bytes.Repeat([]byte{0xAB}, size)
			version := uint32(0)
			for i := 0; i < 16; i++ {
				version += 2
				h.Deliver(0, ownedINV(pool, 13, version, val))
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				version += 2
				fb := pool.Get(size)
				bb := fb.Bytes()
				copy(bb, val)
				h.Deliver(0, INV{
					Epoch: 1, Key: 13, TS: proto.TS{Version: version},
					Value: proto.Value(bb[0:size:size]), Owner: fb,
				})
			}
		})
	}
}
