package core

import (
	"repro/internal/proto"
	"repro/internal/refbuf"
)

// Protocol messages (paper §3.2, Figure 3). Every message is tagged with the
// sender's membership epoch_id; receivers drop messages from a different
// epoch (paper §2.4), which is what makes membership reconfiguration safe:
// a node that has not yet received the latest m-update simply ignores new
// traffic until it catches up, manifesting as message loss that the sender's
// retransmission timer (mlt) recovers from.

// INV invalidates a key at the followers and carries the new value — the
// "early value propagation" (§3.1) that makes writes safely replayable: any
// invalidated node knows everything needed to finish the write itself.
// RMW distinguishes conflicting RMW updates (§3.6) from writes.
type INV struct {
	Epoch uint32
	Key   proto.Key
	TS    proto.TS
	Value proto.Value
	RMW   bool

	// Owner, when non-nil, is the pooled frame buffer that Value aliases:
	// the wire decoder retained it once on this INV's behalf, and exactly
	// one downstream party must consume that reference — the store adopts
	// it on apply (kvs.Entry.Owner), or the engine releases it on every
	// drop path (stale epoch, outranked duplicate, RMW conflict reply).
	// Owner is never encoded; an INV that crosses the wire again carries a
	// fresh frame's ownership on the far side. Nil means Value is a private
	// heap slice (in-process transports, locally minted writes) that is
	// immutable and safe to alias forever.
	Owner *refbuf.Buf
}

// ReleaseOwner drops the INV's frame-buffer reference on a path that will
// not adopt the value into the store. Safe on owner-less INVs.
func (m INV) ReleaseOwner() {
	if m.Owner != nil {
		m.Owner.Release()
	}
}

// ReleaseMsgOwners releases every pooled-buffer reference msg carries,
// looking through the shard envelopes. Transports call it on any decoded
// message they drop instead of delivering, and the wings link calls it when
// Send consumes a message (the frame encoder copies the bytes out
// synchronously, so the reference is spent whether or not the encode
// succeeded).
func ReleaseMsgOwners(msg any) {
	switch m := msg.(type) { //hermesvet:ignore exhaustive deliberately partial: every message type without an Owner field needs no release, and falling through is the correct no-op
	case INV:
		m.ReleaseOwner()
	case proto.ShardMsg:
		ReleaseMsgOwners(m.Msg)
	case proto.ShardBatch:
		for _, sm := range m.Msgs {
			ReleaseMsgOwners(sm.Msg)
		}
	}
}

// ACK acknowledges an INV. The follower echoes the INV's timestamp so the
// coordinator can match it to the pending update. Under optimization O3
// (§3.3) ACKs are broadcast to every replica rather than unicast to the
// coordinator, letting followers validate a half round-trip early.
//
// When the acker's local timestamp outranks the INV (an ACK-without-apply:
// the write still commits but is serialized before the acker's chain), the
// ACK teaches the sender the rival entry via the Higher* fields. Without the
// payload the losing coordinator validates its own copy in ignorance of the
// in-flight rival, and an RMW minted from that copy reads a chain the rival
// is about to splice into — the stale-read interleaving the gray-failure
// chaos sweep exposed (pinned by TestChaosTeachingACK). The recipient only
// installs the taught entry (see Hermes.learnHigher); it never re-issues its
// own write at a fresh timestamp, because the outranked INV may already have
// committed through a §3.4 replay elsewhere.
type ACK struct {
	Epoch uint32
	Key   proto.Key
	TS    proto.TS

	Higher bool        // local entry outranked the INV; payload follows
	HTS    proto.TS    // the outranking entry's timestamp
	HVal   proto.Value // its value (uncommitted here, so applied Invalid)
	HRMW   bool        // whether that entry was minted by an RMW
}

// VAL validates a key: the write with the carried timestamp committed, so a
// follower whose local timestamp equals TS transitions the key back to
// Valid. A VAL with a non-matching timestamp is ignored (§3.2 FVAL).
type VAL struct {
	Epoch uint32
	Key   proto.Key
	TS    proto.TS
}

// MCheck asks followers to confirm they share the sender's epoch. It
// implements the clock-free linearizable read validation of §8 ("Hermes
// without Loosely Synchronized Clocks"): a batch of speculatively executed
// reads is released once a majority confirms the reader's membership is
// current. Seq matches responses to the outstanding check.
type MCheck struct {
	Epoch uint32
	Seq   uint64
}

// MCheckAck confirms an MCheck. Sent only when the receiver's epoch equals
// the MCheck's epoch.
type MCheckAck struct {
	Epoch uint32
	Seq   uint64
}

// ChunkReq asks a member for a range of the datastore; used by shadow
// replicas (learners) to reconstruct state while they catch up
// (§3.4 Recovery). Cursor is an opaque continuation token (0 starts);
// MaxKeys bounds the reply size.
type ChunkReq struct {
	Epoch   uint32
	Cursor  uint64
	MaxKeys int
}

// ChunkResp returns a batch of key records. Done indicates the transfer is
// complete. Receivers apply each record only if its timestamp is newer than
// the local one, so chunk transfer never regresses concurrently replicated
// writes.
type ChunkResp struct {
	Epoch  uint32
	Cursor uint64
	Done   bool
	Keys   []proto.Key
	Recs   []ChunkRec
}

// ChunkRec is one key's record in a ChunkResp. Invalid marks records whose
// source copy was not in Valid state (an uncommitted in-flight write): the
// learner stores them Invalid so it can never serve an uncommitted value
// after promotion; the write's VAL or a replay validates them later.
type ChunkRec struct {
	TS      proto.TS
	Value   proto.Value
	RMW     bool
	Invalid bool
}

// Coalescable marks the messages a sharded node's egress layer gathers into
// cross-shard batch frames: ACKs and VALs (small and fixed-size, dominant in
// the per-write frame rate at W shards) and INVs (value-bearing, batched
// under a byte budget so one jumbo write cannot starve the frame). One
// predicate serves both the live coalescer (cluster) and the simulator's
// model of it (bench), so the two cannot drift. The flow-control class
// differs per type — ACKs are responses (consume no send credit, repay
// one), VALs are one-way (a batch costs one credit), INVs are requests
// (a batch costs one credit per inner INV, each repaid by its ACK) — so
// the coalescer never mixes classes in one batch.
func Coalescable(msg any) bool {
	switch msg.(type) {
	case ACK, VAL, INV:
		return true
	}
	return false
}

// IsResponseMsg reports whether msg implicitly repays a flow-control credit
// to its sender's peer (paper §4.2): responses ride the buffer space the
// requester reserved. The transport's credit discipline and the egress
// coalescer's batch classing both derive from it.
func IsResponseMsg(msg any) bool {
	switch msg.(type) {
	case ACK, MCheckAck, ChunkResp:
		return true
	}
	return false
}
