package core

import (
	"sync/atomic"

	"repro/internal/kvs"
	"repro/internal/proto"
	"repro/internal/refbuf"
)

// ReadGate is the single atomic word guarding the lock-free local-read fast
// path (paper §4.1). The live runtime serves a read on the caller's
// goroutine — one gate load, one store lookup, one gate re-load, zero locks —
// whenever the gate allows it; otherwise the read falls back to the event
// loop's Submit path. The replica republishes the gate on every transition
// that affects read safety: view installation, operational/lease flips, and
// learner catch-up.
//
// Encoding:
//
//	bits 0..31  membership epoch of the last publication
//	bit 32      serving: operational member of the view, not a learner
//	bit 33      noLSC: §8 mode — every read must be speculative and wait for
//	            a commit or membership proof, so the fast path never applies
//
// The epoch bits make any view installation change the word even when the
// flags end up identical, which is what lets ReadLocal detect a transition
// that raced its store lookup.
type ReadGate struct{ v atomic.Uint64 }

const (
	gateServing uint64 = 1 << 32
	gateNoLSC   uint64 = 1 << 33
)

func gateAllows(s uint64) bool { return s&gateServing != 0 && s&gateNoLSC == 0 }

// Allowed reports whether the fast path is currently open.
func (g *ReadGate) Allowed() bool { return gateAllows(g.v.Load()) }

// Epoch returns the membership epoch of the last publication.
func (g *ReadGate) Epoch() uint32 { return uint32(g.v.Load()) }

// Shut closes the gate without touching epoch or mode bits. The live
// runtime calls it before handing an m-update to the event loop so
// fast-path reads fall back for the whole transition window; OnViewChange
// republishes the gate under the new epoch when the installation completes.
func (g *ReadGate) Shut() {
	for {
		old := g.v.Load()
		if old&gateServing == 0 || g.v.CompareAndSwap(old, old&^gateServing) {
			return
		}
	}
}

func (g *ReadGate) publish(epoch uint32, serving, noLSC bool) {
	s := uint64(epoch)
	if serving {
		s |= gateServing
	}
	if noLSC {
		s |= gateNoLSC
	}
	g.v.Store(s)
}

// ReadGate exposes the replica's gate (the live runtime shuts it across
// view installations; tests inspect it).
func (h *Hermes) ReadGate() *ReadGate { return &h.gate }

// publishGate recomputes and publishes the gate from the replica's current
// state. Called from the event loop only.
func (h *Hermes) publishGate() {
	h.gate.publish(h.view.Epoch, h.oper && !h.learner, h.cfg.NoLSC)
}

// ReadLocal attempts the lock-free local-read fast path: it serves the read
// on the calling goroutine iff the gate is open and the key's record is
// Valid, without ever entering the event loop. Missing keys read as the
// store's implicit initial state (Valid, nil), exactly as Submit treats
// them. Safe to call from any goroutine, concurrently with the event loop.
//
// Linearizability argument: a Valid record's value is the latest committed
// value at the instant of the atomic record load (in-flight higher-TS
// writes mark the key non-Valid before any replica acknowledges them), so
// the read linearizes at that load — provided this replica is still a
// serving member. The gate is loaded on both sides of the record load and
// the read falls back unless the two snapshots are identical and open, so a
// concurrent view installation (which shuts the gate first) can never have
// its transition window straddle the lookup unnoticed.
func (h *Hermes) ReadLocal(k proto.Key) (proto.Value, bool) {
	v, owner, ok := h.ReadLocalRetained(k)
	if !ok {
		return nil, false
	}
	if owner != nil {
		// The caller gets a private copy; the pin existed only for the
		// duration of the clone.
		v = v.Clone()
		owner.Release()
	}
	return v, true
}

// ReadLocalRetained is ReadLocal for callers that consume the value
// asynchronously (the serving layer encodes responses on a flusher
// goroutine): when the returned owner is non-nil, the value aliases a pooled
// wire-frame buffer pinned with one reference the caller must Release after
// its last use of the bytes — skipping the defensive copy ReadLocal would
// make. A nil owner means the value is immutable heap memory with no
// lifetime obligation. ok=false follows ReadLocal's fallback contract.
func (h *Hermes) ReadLocalRetained(k proto.Key) (proto.Value, *refbuf.Buf, bool) {
	g := h.gate.v.Load()
	if !gateAllows(g) {
		h.fastMisses.Inc()
		return nil, nil, false
	}
	e, ok := h.store.GetRetained(k)
	if ok && e.State != kvs.Valid {
		if e.Owner != nil {
			e.Owner.Release()
		}
		h.fastMisses.Inc()
		return nil, nil, false
	}
	if h.gate.v.Load() != g {
		if e.Owner != nil {
			e.Owner.Release()
		}
		h.fastMisses.Inc()
		return nil, nil, false
	}
	// One counter bump, not two: the read total is derived as
	// submitted + fastReads when reported, keeping the hit hot path at a
	// single striped increment (see readCounter).
	h.fastReads.Inc()
	return e.Value, e.Owner, true
}

// ReadStats returns the read-side counters: total reads served (fast path +
// event loop), fast-path hits, and fast-path misses (reads that fell back
// to Submit). Unlike Metrics, it is safe to call concurrently with traffic.
func (h *Hermes) ReadStats() (reads, fastHits, fastMisses uint64) {
	fastHits = h.fastReads.Load()
	return h.reads.Load() + fastHits, fastHits, h.fastMisses.Load()
}
