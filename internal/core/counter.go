package core

import (
	"sync/atomic"
	"unsafe"
)

// readCounter is a cache-line-striped event counter for the lock-free read
// fast path. PR 3 left the fast-path hit/miss counters as single atomics
// with a note to shard them if they ever contended: on many-core hosts every
// reader goroutine bumping one word turns the counter's cache line into the
// hottest shared write in an otherwise share-nothing path. Striping spreads
// the increments over readCounterStripes padded slots; Load sums them.
// Totals are exact — only the distribution over stripes is heuristic.
const readCounterStripes = 16 // power of two

type readCounter struct {
	stripes [readCounterStripes]struct {
		n atomic.Uint64
		_ [56]byte // pad to a 64 B cache line so stripes never false-share
	}
}

// stripeIdx picks this goroutine's stripe. Go offers no cheap goroutine or P
// identity, so the address of a stack variable stands in: goroutine stacks
// live in distinct allocations, making the shifted address a stable,
// zero-cost per-goroutine disperser (the conversion to uintptr keeps probe
// on the stack — no allocation). Collisions only cost sharing a stripe.
func stripeIdx() int {
	var probe byte
	return int((uintptr(unsafe.Pointer(&probe)) >> 10) & (readCounterStripes - 1))
}

// Inc adds one to the calling goroutine's stripe.
func (c *readCounter) Inc() {
	c.stripes[stripeIdx()].n.Add(1)
}

// Load returns the exact total across stripes. Like any concurrent counter
// read, the value is a moment-in-time sum, safe to call mid-traffic.
func (c *readCounter) Load() uint64 {
	var n uint64
	for i := range c.stripes {
		n += c.stripes[i].n.Load()
	}
	return n
}
