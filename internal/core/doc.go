package core

// Protocol transition table (paper §3.2, Figure 3, and the RMW rules of
// §3.6), as implemented by this package. States are per key, per replica:
//
//	Valid    the local value is committed and current; reads serve locally.
//	Invalid  a newer write is in flight elsewhere; reads stall.
//	Write    this replica coordinates an in-flight write/RMW for the key.
//	Replay   this replica replays a write it learned through an INV.
//	Trans    a coordinator in Write/Replay whose update was superseded by a
//	         higher-timestamp INV; it still completes its own (committed)
//	         update, then falls to Invalid awaiting the newer write's VAL.
//
// Events and transitions (TS comparisons are on the [version, cid] tuple):
//
//	event                        guard                        actions, next state
//	-------------------------------------------------------------------------------
//	client read                  Valid                        reply value          Valid
//	client read                  not Valid                    queue; arm mlt       (same)
//	client write/RMW             Valid, no pend               CTS (+2 write/+1 RMW),
//	                                                          apply locally, bcast
//	                                                          INV                  Write
//	client write/RMW             otherwise                    queue                (same)
//	INV(ts,val) recv             ts > local, no pend          apply val/ts, ACK    Invalid
//	INV(ts,val) recv             ts > local, pend write       apply val/ts, ACK    Trans
//	INV(ts,val) recv             ts > local, pend replay      drop pend, apply,ACK Invalid
//	INV(ts,val) recv             ts > local, pend RMW         CRMW-abort: complete
//	                                                          Aborted, apply, ACK  Invalid
//	INV(ts)     recv             ts <= local, write INV       ACK only             (same)
//	INV(ts)     recv (RMW flag)  ts < local                   reply local-state
//	                                                          INV (no ACK)         (same)
//	ACK(ts)     recv             pend && ts == pend.ts        record; if write set
//	                                                          covered: complete op,
//	                                                          VAL bcast*           Valid†
//	VAL(ts)     recv             ts == local, no pend         validate; drain
//	                                                          waiters              Valid
//	VAL(ts)     recv             ts == local == pend.ts       someone replayed our
//	                                                          write: complete op   Valid
//	VAL(ts)     recv             ts != local                  ignore               (same)
//	mlt expiry                   pend                         re-bcast INV to
//	                                                          unACKed              (same)
//	mlt expiry                   Invalid, armed               take coordinator
//	                                                          role, bcast INV with
//	                                                          original ts/val      Replay
//	m-update (view change)       pend write                   drop ACKs owed by
//	                                                          removed nodes; re-
//	                                                          bcast with new epoch (same)
//	m-update                     pend RMW                     CRMW-replay: reset
//	                                                          all ACKs, re-bcast   (same)
//	any message, epoch mismatch  —                            drop                 (same)
//
//	*  VAL elided under O1 when superseded (Trans path) and always under O3.
//	†  Invalid instead if a higher-ts INV superseded us while gathering ACKs
//	   (the Trans case); Valid-with-drain if the newer write validated first.
//
// Optimizations (§3.3), each switchable in Config:
//
//	O1 ElideVAL:  a superseded coordinator skips its VAL broadcast.
//	O2 VirtualIDs/CIDOwner: writes stamp a random virtual cid owned by the
//	   node, spreading same-version tiebreak wins fairly.
//	O3 EarlyACKs: followers broadcast ACKs; a follower validates once every
//	   non-coordinator replica ACKed — half an RTT before any VAL — and VALs
//	   are not sent at all.
//
// §8 (NoLSC) read validation: reads execute speculatively and are released
// when a subsequent local commit (ACKs from all live ⊇ majority) or an
// explicit MCheck acknowledged by a majority proves current membership.
