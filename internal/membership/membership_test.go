package membership

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/proto"
)

// A miniature message-pool harness for agents, mirroring the one in
// internal/core but independent of it (package boundaries).
type mharness struct {
	t       *testing.T
	now     time.Duration
	agents  map[proto.NodeID]*Agent
	msgs    []menv
	crashed map[proto.NodeID]bool
	parts   map[[2]proto.NodeID]bool // blocked directed pairs
	views   map[proto.NodeID][]proto.View
	leases  map[proto.NodeID][]bool
}

type menv struct {
	from, to proto.NodeID
	msg      any
}

type magentEnv struct {
	h  *mharness
	id proto.NodeID
}

func (e *magentEnv) Now() time.Duration { return e.h.now }
func (e *magentEnv) Send(to proto.NodeID, m any) {
	e.h.msgs = append(e.h.msgs, menv{from: e.id, to: to, msg: m})
}
func (e *magentEnv) Complete(proto.Completion) {}

func newMHarness(t *testing.T, n int) *mharness {
	h := &mharness{
		t:       t,
		agents:  make(map[proto.NodeID]*Agent),
		crashed: make(map[proto.NodeID]bool),
		parts:   make(map[[2]proto.NodeID]bool),
		views:   make(map[proto.NodeID][]proto.View),
		leases:  make(map[proto.NodeID][]bool),
	}
	all := make([]proto.NodeID, n)
	for i := range all {
		all[i] = proto.NodeID(i)
	}
	view := proto.View{Epoch: 1, Members: append([]proto.NodeID(nil), all...)}
	for _, id := range all {
		id := id
		h.agents[id] = New(Config{
			ID: id, All: all, Initial: view,
			Env:            &magentEnv{h: h, id: id},
			HeartbeatEvery: 10 * time.Millisecond,
			SuspectAfter:   50 * time.Millisecond,
			LeaseDur:       100 * time.Millisecond,
			OnView:         func(v proto.View) { h.views[id] = append(h.views[id], v) },
			OnLease:        func(ok bool) { h.leases[id] = append(h.leases[id], ok) },
		})
	}
	return h
}

func (h *mharness) blocked(a, b proto.NodeID) bool {
	return h.parts[[2]proto.NodeID{a, b}] || h.parts[[2]proto.NodeID{b, a}]
}

func (h *mharness) deliverAll() {
	for i := 0; len(h.msgs) > 0; i++ {
		e := h.msgs[0]
		h.msgs = h.msgs[1:]
		if h.crashed[e.to] || h.crashed[e.from] || h.blocked(e.from, e.to) {
			continue
		}
		if a, ok := h.agents[e.to]; ok {
			a.Deliver(e.from, e.msg)
		}
		if i > 500000 {
			h.t.Fatal("membership message storm")
		}
	}
}

// runFor advances virtual time in heartbeat-sized steps, ticking all agents
// and flushing the network each step.
func (h *mharness) runFor(d time.Duration) {
	const step = 5 * time.Millisecond
	for elapsed := time.Duration(0); elapsed < d; elapsed += step {
		h.now += step
		for id, a := range h.agents {
			if !h.crashed[id] {
				a.Tick()
			}
		}
		h.deliverAll()
	}
}

func (h *mharness) partition(groupA, groupB []proto.NodeID) {
	for _, a := range groupA {
		for _, b := range groupB {
			h.parts[[2]proto.NodeID{a, b}] = true
		}
	}
}

func (h *mharness) heal() { h.parts = make(map[[2]proto.NodeID]bool) }

func TestStableGroupKeepsView(t *testing.T) {
	h := newMHarness(t, 5)
	h.runFor(500 * time.Millisecond)
	for id, a := range h.agents {
		if got := a.View().Epoch; got != 1 {
			t.Fatalf("node %d: epoch advanced to %d with no failures", id, got)
		}
		if !a.Operational() {
			t.Fatalf("node %d lost its lease in a healthy group", id)
		}
	}
}

func TestCrashTriggersReconfiguration(t *testing.T) {
	h := newMHarness(t, 5)
	h.runFor(50 * time.Millisecond)
	h.crashed[4] = true
	h.runFor(600 * time.Millisecond)
	for id, a := range h.agents {
		if h.crashed[id] {
			continue
		}
		v := a.View()
		if v.Epoch < 2 {
			t.Fatalf("node %d: never reconfigured (epoch %d)", id, v.Epoch)
		}
		if v.Contains(4) {
			t.Fatalf("node %d: dead node still in view %v", id, v)
		}
		if len(v.Members) != 4 {
			t.Fatalf("node %d: view %v", id, v)
		}
	}
	// All survivors decided the same view.
	ref := h.agents[0].View()
	for id, a := range h.agents {
		if h.crashed[id] {
			continue
		}
		if got := a.View(); got.Epoch != ref.Epoch {
			t.Fatalf("node %d epoch %d vs %d: divergent decisions", id, got.Epoch, ref.Epoch)
		}
	}
}

func TestReconfigurationWaitsForLeaseExpiry(t *testing.T) {
	h := newMHarness(t, 3)
	h.runFor(50 * time.Millisecond)
	h.crashed[2] = true
	// SuspectAfter=50ms, LeaseDur=100ms: no m-update may complete before
	// suspicion + lease expiry (~150ms after silence starts).
	h.runFor(100 * time.Millisecond)
	for id, a := range h.agents {
		if h.crashed[id] {
			continue
		}
		if a.View().Epoch != 1 {
			t.Fatalf("node %d reconfigured before the dead node's lease expired", id)
		}
	}
	h.runFor(300 * time.Millisecond)
	if h.agents[0].View().Contains(2) {
		t.Fatal("reconfiguration never happened after lease expiry")
	}
}

func TestTwoSimultaneousCrashes(t *testing.T) {
	h := newMHarness(t, 5)
	h.runFor(50 * time.Millisecond)
	h.crashed[3] = true
	h.crashed[4] = true
	h.runFor(800 * time.Millisecond)
	v := h.agents[0].View()
	if len(v.Members) != 3 || v.Contains(3) || v.Contains(4) {
		t.Fatalf("view after double crash: %v", v)
	}
}

func TestMinorityPartitionLosesLeaseAndCannotReconfigure(t *testing.T) {
	h := newMHarness(t, 5)
	h.runFor(50 * time.Millisecond)
	// {0,1} split from {2,3,4}.
	h.partition([]proto.NodeID{0, 1}, []proto.NodeID{2, 3, 4})
	h.runFor(800 * time.Millisecond)

	// Minority: leases lost, no new epoch decided there.
	for _, id := range []proto.NodeID{0, 1} {
		if h.agents[id].Operational() {
			t.Fatalf("node %d on minority side still operational", id)
		}
	}
	// Majority: reconfigured to {2,3,4} and operational.
	for _, id := range []proto.NodeID{2, 3, 4} {
		a := h.agents[id]
		if !a.Operational() {
			t.Fatalf("node %d on majority side lost its lease", id)
		}
		v := a.View()
		if v.Contains(0) || v.Contains(1) || len(v.Members) != 3 {
			t.Fatalf("node %d: majority view %v", id, v)
		}
	}
	minorityEpoch := h.agents[0].View().Epoch
	majorityEpoch := h.agents[2].View().Epoch
	if minorityEpoch >= majorityEpoch {
		t.Fatalf("minority epoch %d >= majority %d: minority reconfigured!", minorityEpoch, majorityEpoch)
	}
}

func TestHealedPartitionCatchesUpViaHeartbeat(t *testing.T) {
	h := newMHarness(t, 5)
	h.runFor(50 * time.Millisecond)
	h.partition([]proto.NodeID{0, 1}, []proto.NodeID{2, 3, 4})
	h.runFor(800 * time.Millisecond)
	h.heal()
	h.runFor(300 * time.Millisecond)
	// The healed minority learns the new epoch through heartbeats+ViewReq.
	maj := h.agents[2].View().Epoch
	for _, id := range []proto.NodeID{0, 1} {
		if got := h.agents[id].View().Epoch; got != maj {
			t.Fatalf("node %d stuck at epoch %d (majority at %d)", id, got, maj)
		}
		// Lease restored by renewed heartbeats.
		if !h.agents[id].Operational() {
			t.Fatalf("node %d lease not restored after heal", id)
		}
	}
}

func TestProposeViewAddsLearner(t *testing.T) {
	h := newMHarness(t, 3)
	h.runFor(30 * time.Millisecond)
	h.agents[0].ProposeView([]proto.NodeID{0, 1, 2}, []proto.NodeID{5})
	h.runFor(100 * time.Millisecond)
	for id, a := range h.agents {
		v := a.View()
		if !v.IsLearner(5) {
			t.Fatalf("node %d: learner not installed: %v", id, v)
		}
		if v.Epoch != 2 {
			t.Fatalf("node %d: epoch %d", id, v.Epoch)
		}
	}
}

func TestDuelingProposersDecideOneView(t *testing.T) {
	// Two nodes propose different views for the same epoch concurrently;
	// Paxos must decide exactly one.
	h := newMHarness(t, 5)
	h.runFor(30 * time.Millisecond)
	h.agents[0].ProposeView([]proto.NodeID{0, 1, 2, 3}, nil)
	h.agents[4].ProposeView([]proto.NodeID{0, 1, 2, 4}, nil)
	h.runFor(500 * time.Millisecond)
	ref := h.agents[0].View()
	if ref.Epoch < 2 {
		t.Fatal("no decision reached")
	}
	for id, a := range h.agents {
		v := a.View()
		if v.Epoch >= 2 {
			// Any node that reached epoch 2 must agree on its membership.
			two := v
			if two.Epoch > 2 {
				continue
			}
			if len(two.Members) != len(h.agents[0].View().Members) && h.agents[0].View().Epoch == 2 {
				t.Fatalf("node %d decided different epoch-2 view: %v", id, two)
			}
		}
	}
	// Stronger check: collect epoch-2 views seen via OnView; all identical.
	var first *proto.View
	for id := range h.agents {
		for _, v := range h.views[id] {
			if v.Epoch != 2 {
				continue
			}
			v := v
			if first == nil {
				first = &v
				continue
			}
			if len(v.Members) != len(first.Members) {
				t.Fatalf("divergent epoch-2 decisions: %v vs %v", v, *first)
			}
			for i := range v.Members {
				if v.Members[i] != first.Members[i] {
					t.Fatalf("divergent epoch-2 decisions: %v vs %v", v, *first)
				}
			}
		}
	}
	if first == nil {
		t.Fatal("no epoch-2 view recorded")
	}
}

func TestMessageLossDuringReconfiguration(t *testing.T) {
	// Drop 20% of membership traffic while a node dies; the group must
	// still converge on a new view.
	rng := rand.New(rand.NewSource(3))
	h := newMHarness(t, 5)
	h.runFor(50 * time.Millisecond)
	h.crashed[4] = true
	const step = 5 * time.Millisecond
	for elapsed := time.Duration(0); elapsed < 1200*time.Millisecond; elapsed += step {
		h.now += step
		for id, a := range h.agents {
			if !h.crashed[id] {
				a.Tick()
			}
		}
		// Random loss.
		kept := h.msgs[:0]
		for _, e := range h.msgs {
			if rng.Float64() >= 0.2 {
				kept = append(kept, e)
			}
		}
		h.msgs = kept
		h.deliverAll()
	}
	for id, a := range h.agents {
		if h.crashed[id] {
			continue
		}
		if a.View().Contains(4) {
			t.Fatalf("node %d never removed the dead node despite retries", id)
		}
	}
}

func TestLeaseLostWhenIsolated(t *testing.T) {
	h := newMHarness(t, 3)
	h.runFor(50 * time.Millisecond)
	h.partition([]proto.NodeID{0}, []proto.NodeID{1, 2})
	h.runFor(400 * time.Millisecond)
	if h.agents[0].Operational() {
		t.Fatal("isolated node kept its lease")
	}
	// OnLease fired with false.
	fired := false
	for _, ok := range h.leases[0] {
		if !ok {
			fired = true
		}
	}
	if !fired {
		t.Fatal("OnLease(false) never fired")
	}
}

func TestIsMsg(t *testing.T) {
	for _, m := range []any{Heartbeat{}, ViewReq{}, ViewCommit{}, Prepare{}, Promise{}, Accept{}, Accepted{}} {
		if !IsMsg(m) {
			t.Fatalf("IsMsg(%T)=false", m)
		}
	}
	if IsMsg(42) || IsMsg("x") {
		t.Fatal("IsMsg accepted a foreign type")
	}
}

func TestDefaultsApplied(t *testing.T) {
	a := New(Config{ID: 0, All: []proto.NodeID{0}, Initial: proto.View{Epoch: 1, Members: []proto.NodeID{0}},
		Env: &magentEnv{h: &mharness{}, id: 0}})
	if a.cfg.HeartbeatEvery <= 0 || a.cfg.SuspectAfter <= 0 || a.cfg.LeaseDur <= 0 {
		t.Fatal("defaults not applied")
	}
	if !a.Operational() {
		t.Fatal("single node should be operational (is its own majority)")
	}
}

// TestHeartbeatGossipsShardEpochs pins the heartbeat leg of epoch-gossip
// self-healing: an agent configured with a per-shard epoch vector attaches
// it to every heartbeat, and a receiver whose own vector lags anywhere hands
// the peer's whole vector to OnPeerAhead — even when the node-level view
// epochs match, which is exactly the gap the node-level check cannot see. A
// caught-up receiver must never fire the hook.
func TestHeartbeatGossipsShardEpochs(t *testing.T) {
	h := newMHarness(t, 3)
	all := []proto.NodeID{0, 1, 2}
	view := proto.View{Epoch: 1, Members: append([]proto.NodeID(nil), all...)}
	base := Config{
		All: all, Initial: view,
		HeartbeatEvery: 10 * time.Millisecond,
		SuspectAfter:   50 * time.Millisecond,
		LeaseDur:       100 * time.Millisecond,
	}
	type obs struct {
		from   proto.NodeID
		epochs []uint32
	}
	var seen []obs
	// Node 1 lags on shard 2; node 2 runs ahead there. Node 0 keeps the
	// harness default config (no vector at all) — its heartbeats must be
	// inert on both sides of the hook.
	cfg1 := base
	cfg1.ID, cfg1.Env = 1, &magentEnv{h: h, id: 1}
	cfg1.Epochs = func() []uint32 { return []uint32{1, 1, 1, 1} }
	cfg1.OnPeerAhead = func(from proto.NodeID, epochs []uint32) {
		seen = append(seen, obs{from, append([]uint32(nil), epochs...)})
	}
	h.agents[1] = New(cfg1)
	cfg2 := base
	cfg2.ID, cfg2.Env = 2, &magentEnv{h: h, id: 2}
	cfg2.Epochs = func() []uint32 { return []uint32{1, 1, 3, 1} }
	cfg2.OnPeerAhead = func(from proto.NodeID, epochs []uint32) {
		t.Errorf("ahead-of-everyone node 2 observed peer %d ahead (%v)", from, epochs)
	}
	h.agents[2] = New(cfg2)

	h.runFor(100 * time.Millisecond)
	if len(seen) == 0 {
		t.Fatal("laggard never observed the ahead peer via heartbeats")
	}
	for _, o := range seen {
		if o.from != 2 {
			t.Fatalf("OnPeerAhead fired for node %d (vector %v); only node 2 is ahead", o.from, o.epochs)
		}
		if len(o.epochs) != 4 || o.epochs[2] != 3 {
			t.Fatalf("hook handed vector %v, want node 2's [1 1 3 1]", o.epochs)
		}
	}
}
