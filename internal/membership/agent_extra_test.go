package membership

import (
	"testing"
	"time"

	"repro/internal/proto"
)

// A node crashing *during* an ongoing reconfiguration (the proposer itself)
// must not wedge the group: another node's staggered proposal decides.
func TestProposerCrashMidReconfiguration(t *testing.T) {
	h := newMHarness(t, 5)
	h.runFor(50 * time.Millisecond)
	h.crashed[4] = true
	// Let suspicion+lease pass so node 0 (rank 0) is about to propose,
	// then kill node 0 too.
	h.runFor(160 * time.Millisecond)
	h.crashed[0] = true
	h.runFor(1500 * time.Millisecond)
	for _, id := range []proto.NodeID{1, 2, 3} {
		v := h.agents[id].View()
		if v.Contains(4) || v.Contains(0) {
			t.Fatalf("node %d: dead nodes still in view %v", id, v)
		}
		if len(v.Members) != 3 {
			t.Fatalf("node %d: view %v", id, v)
		}
	}
}

// Sequential failures: the group shrinks 5 -> 4 -> 3 across two separate
// reconfigurations with monotonically increasing epochs.
func TestSequentialFailures(t *testing.T) {
	h := newMHarness(t, 5)
	h.runFor(50 * time.Millisecond)
	h.crashed[4] = true
	h.runFor(700 * time.Millisecond)
	e1 := h.agents[0].View().Epoch
	if h.agents[0].View().Contains(4) {
		t.Fatal("first failure not handled")
	}
	h.crashed[3] = true
	h.runFor(900 * time.Millisecond)
	v := h.agents[0].View()
	if v.Contains(3) || len(v.Members) != 3 {
		t.Fatalf("second failure not handled: %v", v)
	}
	if v.Epoch <= e1 {
		t.Fatalf("epoch did not advance: %d -> %d", e1, v.Epoch)
	}
}

// The agent must never remove so many nodes that nothing remains.
func TestNeverRemovesEveryone(t *testing.T) {
	h := newMHarness(t, 3)
	h.runFor(50 * time.Millisecond)
	// Partition node 0 from everyone: from 0's perspective both peers die,
	// but 0 also loses its lease (minority), so it proposes nothing.
	h.partition([]proto.NodeID{0}, []proto.NodeID{1, 2})
	h.runFor(900 * time.Millisecond)
	if got := len(h.agents[0].View().Members); got == 0 {
		t.Fatal("agent removed every member")
	}
	// The majority side reconfigured to {1,2}.
	if v := h.agents[1].View(); v.Contains(0) {
		t.Fatalf("majority view still contains isolated node: %v", v)
	}
}

// Heartbeats must not leak across epochs in a way that resurrects removed
// members: after the m-update, a removed node's heartbeats don't re-add it
// (re-adding is an explicit ProposeView).
func TestRemovedNodeHeartbeatsDoNotResurrect(t *testing.T) {
	h := newMHarness(t, 3)
	h.runFor(50 * time.Millisecond)
	h.crashed[2] = true
	h.runFor(700 * time.Millisecond)
	if h.agents[0].View().Contains(2) {
		t.Fatal("not removed")
	}
	// Node 2 comes back online (crash-recover) and heartbeats again.
	h.crashed[2] = false
	h.runFor(300 * time.Millisecond)
	if h.agents[0].View().Contains(2) {
		t.Fatal("heartbeats alone re-added a removed node")
	}
	// It learns the newer epoch via ViewReq and can then be re-added
	// explicitly (as a learner first, per §3.4 Recovery).
	if h.agents[2].View().Epoch != h.agents[0].View().Epoch {
		t.Fatal("recovered node did not catch up on the view")
	}
	h.agents[0].ProposeView(h.agents[0].View().Members, []proto.NodeID{2})
	h.runFor(200 * time.Millisecond)
	if !h.agents[0].View().IsLearner(2) {
		t.Fatalf("explicit re-add failed: %v", h.agents[0].View())
	}
}
