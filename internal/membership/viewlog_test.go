package membership

import (
	"testing"
	"time"

	"repro/internal/proto"
)

// The view log + redelivery counter + without-aliasing fixes, unit-tested
// against a directly driven Agent (no harness network needed).

func testAgent(t *testing.T) *Agent {
	t.Helper()
	all := []proto.NodeID{0, 1, 2}
	return New(Config{
		ID: 0, All: all,
		Initial: proto.View{Epoch: 1, Members: append([]proto.NodeID(nil), all...)},
		Env:     &magentEnv{h: &mharness{t: t}, id: 0},
	})
}

// without must return a fresh slice: the previous in-place filter wrote
// through the input's backing array, silently corrupting whatever view (or
// cfg.All) the caller's slice aliased.
func TestWithoutDoesNotAliasInput(t *testing.T) {
	in := []proto.NodeID{0, 1, 2, 3, 4}
	orig := append([]proto.NodeID(nil), in...)
	out := without(in, []proto.NodeID{1, 3})
	want := []proto.NodeID{0, 2, 4}
	if len(out) != len(want) {
		t.Fatalf("without = %v, want %v", out, want)
	}
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("without = %v, want %v", out, want)
		}
	}
	for i := range in {
		if in[i] != orig[i] {
			t.Fatalf("without overwrote its input: %v, want %v untouched", in, orig)
		}
	}
	if len(out) > 0 && &out[0] == &in[0] {
		t.Fatal("without returned a slice aliasing the input's backing array")
	}
}

// The agent-level version of the same bug: a removal proposal filtering a
// dead node must leave the committed view's member list bit-identical while
// the proposal is in flight — even when the filtered slice aliases live
// state.
func TestProposalFilteringLeavesViewIntact(t *testing.T) {
	h := newMHarness(t, 3)
	a := h.agents[0]
	before := append([]proto.NodeID(nil), a.view.Members...)
	// Make node 2 look long dead while node 1 stays fresh, then tick: node 0
	// (rank 0 among survivors) starts the removal proposal immediately.
	h.now = 10 * time.Second
	a.lastHeard[1] = h.now
	a.lastHeard[2] = 0
	a.Tick()
	if !a.Proposing() {
		t.Fatal("no removal proposal started")
	}
	if got := a.prop.view.Members; len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Fatalf("proposal members %v, want [0 1]", got)
	}
	for i := range before {
		if a.view.Members[i] != before[i] {
			t.Fatalf("building the proposal corrupted the committed view: %v, want %v",
				a.view.Members, before)
		}
	}
}

// Duplicate deliveries of the current view must stay idempotent — OnView
// fires once per epoch — but observable through the redelivery counter.
func TestInstallRedeliveryIdempotentButCounted(t *testing.T) {
	h := newMHarness(t, 3)
	a := h.agents[0]
	v2 := proto.View{Epoch: 2, Members: []proto.NodeID{0, 1, 2}}
	a.Deliver(1, ViewCommit{View: v2})
	if got := len(h.views[0]); got != 1 {
		t.Fatalf("OnView fired %d times after first install, want 1", got)
	}
	if a.Redelivered() != 0 {
		t.Fatalf("redelivered = %d before any duplicate", a.Redelivered())
	}
	// The same commit again (a lossy wire redelivers), plus a stale one.
	a.Deliver(2, ViewCommit{View: v2})
	a.Deliver(2, ViewCommit{View: proto.View{Epoch: 1, Members: []proto.NodeID{0, 1, 2}}})
	if got := len(h.views[0]); got != 1 {
		t.Fatalf("OnView re-fired on redelivery: %d calls, want 1", got)
	}
	if got := a.Redelivered(); got != 2 {
		t.Fatalf("redelivered = %d, want 2", got)
	}
	if a.View().Epoch != 2 {
		t.Fatalf("view regressed to epoch %d", a.View().Epoch)
	}
}

// The view log retains installed views in epoch order, serves only the gap
// above `since`, and stays bounded.
func TestViewLogRetainsAndBounds(t *testing.T) {
	h := newMHarness(t, 3)
	a := h.agents[0]
	members := []proto.NodeID{0, 1, 2}
	for e := uint32(2); e <= 10; e++ {
		a.Deliver(1, ViewCommit{View: proto.View{Epoch: e, Members: members}})
	}
	got := a.ViewLog(6)
	if len(got) != 4 {
		t.Fatalf("ViewLog(6) returned %d views, want 4 (epochs 7..10)", len(got))
	}
	for i, v := range got {
		if want := uint32(7 + i); v.Epoch != want {
			t.Fatalf("ViewLog(6)[%d].Epoch = %d, want %d", i, v.Epoch, want)
		}
	}
	// Mutating a returned view must not reach the log (clones only).
	got[0].Members[0] = proto.NilNode
	if a.ViewLog(6)[0].Members[0] == proto.NilNode {
		t.Fatal("ViewLog returned an aliased member list")
	}
	// Blow past the cap; the log keeps only the newest viewLogCap entries.
	for e := uint32(11); e <= 11+2*viewLogCap; e++ {
		a.Deliver(1, ViewCommit{View: proto.View{Epoch: e, Members: members}})
	}
	all := a.ViewLog(0)
	if len(all) != viewLogCap {
		t.Fatalf("log holds %d views after overflow, want %d", len(all), viewLogCap)
	}
	if newest := all[len(all)-1].Epoch; newest != 11+2*viewLogCap {
		t.Fatalf("newest retained epoch %d, want %d", newest, 11+2*uint32(viewLogCap))
	}
	if oldest := all[0].Epoch; oldest != 11+2*viewLogCap-(viewLogCap-1) {
		t.Fatalf("oldest retained epoch %d, want %d", oldest, 11+2*viewLogCap-(viewLogCap-1))
	}
}

// A fresh agent logs its initial view, so a peer one epoch ahead of a
// rejoiner can serve the full gap including the view it booted with.
func TestViewLogIncludesInitialView(t *testing.T) {
	a := testAgent(t)
	log := a.ViewLog(0)
	if len(log) != 1 || log[0].Epoch != 1 {
		t.Fatalf("fresh agent's log = %+v, want exactly the initial epoch-1 view", log)
	}
}
