package membership

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/proto"
)

// The full §3.4 rejoin arc at the membership layer, as the reconfiguration
// chaos harness exercises it end to end in internal/sim: a member
// crash-stops and is reconfigured out; the node restarts as a NEW Agent —
// stale epoch-1 initial view, no Paxos acceptor state (a process restart
// loses everything volatile) — catches up on the committed view via
// heartbeat/ViewReq, is re-added as a learner, and is finally promoted to a
// serving member. Random message loss runs throughout: every step must be
// carried by retries (heartbeats, proposal re-issue), not by luck.
func TestRejoinAfterRestartUnderLoss(t *testing.T) {
	h := newMHarness(t, 3)
	rng := rand.New(rand.NewSource(42))
	lossyRun := func(d time.Duration) {
		const step = 5 * time.Millisecond
		for elapsed := time.Duration(0); elapsed < d; elapsed += step {
			h.now += step
			for id, a := range h.agents {
				if !h.crashed[id] {
					a.Tick()
				}
			}
			// Drop ~10% of in-flight membership traffic before delivery.
			kept := h.msgs[:0]
			for _, m := range h.msgs {
				if rng.Float64() >= 0.10 {
					kept = append(kept, m)
				}
			}
			h.msgs = kept
			h.deliverAll()
		}
	}

	lossyRun(50 * time.Millisecond)
	h.crashed[2] = true
	lossyRun(900 * time.Millisecond)
	v := h.agents[0].View()
	if v.Contains(2) || len(v.Members) != 2 {
		t.Fatalf("crashed node not removed under loss: %v", v)
	}
	removedEpoch := v.Epoch

	// Process restart: a brand-new Agent with the ORIGINAL epoch-1 view and
	// empty consensus state, exactly what a rebooted node holds.
	all := []proto.NodeID{0, 1, 2}
	h.agents[2] = New(Config{
		ID: 2, All: all,
		Initial:        proto.View{Epoch: 1, Members: all},
		Env:            &magentEnv{h: h, id: 2},
		HeartbeatEvery: 10 * time.Millisecond,
		SuspectAfter:   50 * time.Millisecond,
		LeaseDur:       100 * time.Millisecond,
	})
	h.crashed[2] = false

	// Its heartbeats advertise the stale epoch; peers' higher epoch flows
	// back via ViewReq/ViewCommit — and must NOT re-add it.
	lossyRun(300 * time.Millisecond)
	if got := h.agents[2].View().Epoch; got != removedEpoch {
		t.Fatalf("restarted node at epoch %d, peers at %d — view catch-up failed", got, removedEpoch)
	}
	if h.agents[0].View().Contains(2) {
		t.Fatal("restart alone re-added the removed node")
	}

	// Operator re-adds it as a learner (shadow replica)...
	h.agents[0].ProposeView(h.agents[0].View().Members, []proto.NodeID{2})
	lossyRun(300 * time.Millisecond)
	for id := proto.NodeID(0); id < 3; id++ {
		if v := h.agents[id].View(); !v.IsLearner(2) || v.Contains(2) {
			t.Fatalf("node %d after learner re-add: %v", id, v)
		}
	}

	// ... and, once caught up (the datastore side is the protocol's
	// business), promotes it to a full member.
	h.agents[1].ProposeView([]proto.NodeID{0, 1, 2}, nil)
	lossyRun(300 * time.Millisecond)
	for id := proto.NodeID(0); id < 3; id++ {
		v := h.agents[id].View()
		if !v.Contains(2) || v.IsLearner(2) || len(v.Members) != 3 {
			t.Fatalf("node %d after promotion: %v", id, v)
		}
	}
	if e := h.agents[2].View().Epoch; e <= removedEpoch+1 {
		t.Fatalf("promotion epoch %d did not advance past learner epoch", e)
	}
	// The promoted node is a first-class agent again: its lease holds.
	if !h.agents[2].Operational() {
		t.Fatal("promoted node has no lease")
	}
}
