// Package membership implements the reliable membership (RM) substrate that
// membership-based protocols like Hermes depend on (paper §2.4): a stable,
// lease-guarded view of live nodes maintained in the style of Vertical
// Paxos / virtual synchrony. Each node runs an Agent that
//
//   - exchanges heartbeats and suspects silent peers,
//   - holds a lease: a node is operational only while it has heard from a
//     majority recently, so replicas on the minority side of a partition
//     stop serving before the membership can change (CAP §3.4),
//   - reconfigures the view (an "m-update": new member list + incremented
//     epoch_id) through single-decree Paxos among the *configured* node set,
//     so only a primary partition with a majority can decide, and
//   - only proposes removal after the suspect's lease must have expired,
//     masking false positives of unreliable failure detection.
//
// The Agent is a deterministic state machine with the same Env/Tick shape as
// the protocols, so it runs under both the simulator and the live runtime.
package membership

import (
	"sort"
	"time"

	"repro/internal/proto"
)

// --- Messages ---

// Heartbeat announces liveness and the sender's current epoch; a receiver
// that sees a higher epoch asks for the committed view. ShardEpochs gossips
// the sender's per-shard membership epoch vector (Config.Epochs) so a node
// whose individual shards lag the cluster — invisible in the node-level
// Epoch — can detect its own gap and fast-forward without an operator
// (Config.OnPeerAhead). Empty when the host has no per-shard epochs.
type Heartbeat struct {
	Epoch       uint32
	ShardEpochs []uint32
}

// ViewReq asks a more up-to-date peer for its committed view.
type ViewReq struct{}

// ViewCommit publishes a decided view. Idempotent; receivers install it iff
// the epoch advances.
type ViewCommit struct {
	View proto.View
}

// Prepare is Paxos phase 1a for the consensus instance deciding epoch
// View.Epoch (carried in Ballot's instance field).
type Prepare struct {
	Instance uint32 // the epoch being decided
	Ballot   uint64
}

// Promise is Paxos phase 1b.
type Promise struct {
	Instance uint32
	Ballot   uint64
	// Previously accepted proposal, if any.
	AcceptedBallot uint64
	AcceptedView   proto.View
	HasAccepted    bool
}

// Accept is Paxos phase 2a.
type Accept struct {
	Instance uint32
	Ballot   uint64
	View     proto.View
}

// Accepted is Paxos phase 2b.
type Accepted struct {
	Instance uint32
	Ballot   uint64
}

// IsMsg reports whether m is a membership-layer message; hosts use it to
// route traffic between the Agent and the replication protocol.
func IsMsg(m any) bool {
	switch m.(type) {
	case Heartbeat, ViewReq, ViewCommit, Prepare, Promise, Accept, Accepted:
		return true
	}
	return false
}

// --- Agent ---

// Config parameterizes an Agent.
type Config struct {
	ID proto.NodeID
	// All is the full configured node set: the Paxos acceptor group. The
	// replica group (view) is always a subset. Quorums are majorities of
	// All, which is what confines m-updates to the primary partition.
	All []proto.NodeID
	// Initial is the starting view.
	Initial proto.View
	// Env is the message/time interface (shared with the protocol host).
	Env proto.Env
	// HeartbeatEvery is the heartbeat period.
	HeartbeatEvery time.Duration
	// SuspectAfter is the silence threshold for suspecting a member.
	SuspectAfter time.Duration
	// LeaseDur is the membership lease duration: reconfiguration waits an
	// extra LeaseDur after suspicion so the suspect has provably stopped
	// serving (its lease expired) before it is removed.
	LeaseDur time.Duration
	// OnView is invoked whenever a new view is installed.
	OnView func(proto.View)
	// OnLease is invoked when this node's operational status changes.
	OnLease func(ok bool)
	// Epochs, when set, supplies the host's per-shard membership epoch
	// vector; it is attached to every outgoing heartbeat (epoch gossip).
	Epochs func() []uint32
	// OnPeerAhead is invoked when an incoming heartbeat's shard-epoch vector
	// shows the sender strictly ahead of this host on some shard (compared
	// against Epochs()). The hook owns debouncing and the actual
	// fast-forward; the agent only detects the lag.
	OnPeerAhead func(from proto.NodeID, epochs []uint32)
}

// instance is one single-decree Paxos consensus (deciding one epoch).
type instance struct {
	promised       uint64
	acceptedBallot uint64
	acceptedView   proto.View
	hasAccepted    bool
}

// proposal tracks this node's in-flight proposal.
type proposal struct {
	instance uint32
	ballot   uint64
	view     proto.View
	promises map[proto.NodeID]Promise
	accepts  map[proto.NodeID]bool
	phase    int // 1 = awaiting promises, 2 = awaiting accepts
	deadline time.Duration
}

// Agent is one node's reliable-membership state machine.
type Agent struct {
	cfg  Config
	id   proto.NodeID
	env  proto.Env
	view proto.View

	lastHeard map[proto.NodeID]time.Duration
	lastBeat  time.Duration
	leaseOK   bool

	instances map[uint32]*instance
	prop      *proposal
	ballotGen uint64

	// vlog is the bounded view log: every view this agent has installed, in
	// ascending epoch order, capped at viewLogCap. A node or shard that
	// skipped epochs replays the gap from a peer's log (proto.ViewLogReq)
	// instead of wedging on the <=-epoch install guard.
	vlog []proto.View
	// redelivered counts installs dropped by the <=-epoch guard: duplicate
	// deliveries of the current view (a lossy wire redelivers ViewCommits)
	// and stale ones. Redelivery stays idempotent — OnView never re-fires —
	// but is observable here.
	redelivered uint64
}

// viewLogCap bounds the retained view log. Reconfigurations are rare (node
// churn, not data-path traffic), so 64 epochs of history is far more than
// any live gap; a laggard behind by more must have been down long enough
// that it rejoins through the full learner arc anyway.
const viewLogCap = 64

// New builds an Agent. The caller must invoke Tick periodically and route
// membership messages to Deliver.
func New(cfg Config) *Agent {
	if cfg.HeartbeatEvery <= 0 {
		cfg.HeartbeatEvery = 10 * time.Millisecond
	}
	if cfg.SuspectAfter <= 0 {
		cfg.SuspectAfter = 5 * cfg.HeartbeatEvery
	}
	if cfg.LeaseDur <= 0 {
		cfg.LeaseDur = 2 * cfg.SuspectAfter
	}
	a := &Agent{
		cfg:       cfg,
		id:        cfg.ID,
		env:       cfg.Env,
		view:      cfg.Initial.Clone(),
		lastHeard: make(map[proto.NodeID]time.Duration),
		instances: make(map[uint32]*instance),
		leaseOK:   true,
	}
	// Give peers a full suspicion window from the start.
	for _, n := range cfg.All {
		a.lastHeard[n] = a.env.Now()
	}
	a.logView(a.view)
	return a
}

// View returns the current committed view.
func (a *Agent) View() proto.View { return a.view }

// Operational reports whether this node's lease is valid: it has heard from
// a majority of the configured nodes within the lease window. On the
// minority side of a partition this goes false before any m-update can
// complete on the majority side.
func (a *Agent) Operational() bool { return a.leaseOK }

func (a *Agent) quorum() int { return len(a.cfg.All)/2 + 1 }

// Tick drives heartbeats, failure detection, lease evaluation and proposal
// retries.
func (a *Agent) Tick() {
	now := a.env.Now()
	if now-a.lastBeat >= a.cfg.HeartbeatEvery {
		a.lastBeat = now
		hb := Heartbeat{Epoch: a.view.Epoch}
		if a.cfg.Epochs != nil {
			hb.ShardEpochs = a.cfg.Epochs()
		}
		for _, n := range a.cfg.All {
			if n != a.id {
				a.env.Send(n, hb)
			}
		}
	}
	a.evalLease(now)
	a.maybePropose(now)
	if a.prop != nil && now >= a.prop.deadline {
		// Stalled proposal (duel or loss): retry with a higher ballot.
		v := a.prop.view
		inst := a.prop.instance
		a.prop = nil
		a.startProposal(inst, v, now)
	}
}

func (a *Agent) evalLease(now time.Duration) {
	heard := 1 // self
	for _, n := range a.cfg.All {
		if n == a.id {
			continue
		}
		if now-a.lastHeard[n] <= a.cfg.LeaseDur {
			heard++
		}
	}
	ok := heard >= a.quorum()
	if ok != a.leaseOK {
		a.leaseOK = ok
		if a.cfg.OnLease != nil {
			a.cfg.OnLease(ok)
		}
	}
}

// maybePropose starts a reconfiguration once a *view member* has been silent
// past suspicion plus lease expiry. Proposal initiation is staggered by the
// proposer's rank among live members to avoid duels (ballots still make
// duels safe, just slower).
func (a *Agent) maybePropose(now time.Duration) {
	if a.prop != nil || !a.leaseOK {
		return
	}
	var dead []proto.NodeID
	var oldest time.Duration
	for _, n := range a.view.Members {
		if n == a.id {
			continue
		}
		silent := now - a.lastHeard[n]
		if silent >= a.cfg.SuspectAfter+a.cfg.LeaseDur {
			dead = append(dead, n)
			if silent > oldest {
				oldest = silent
			}
		}
	}
	if len(dead) == 0 {
		return
	}
	// Keep a majority of the configured set: shrinking below that would
	// deadlock future reconfigurations; at that point the deployment needs
	// operator intervention anyway.
	if len(a.view.Members)-len(dead) < 1 {
		return
	}
	// Stagger: rank 0 among surviving members proposes immediately; rank r
	// waits r extra suspicion windows.
	rank := 0
	for _, n := range a.view.Members {
		if contains(dead, n) {
			continue
		}
		if n < a.id {
			rank++
		}
	}
	if oldest < a.cfg.SuspectAfter+a.cfg.LeaseDur+time.Duration(rank)*a.cfg.SuspectAfter {
		return
	}
	next := a.view.Clone()
	next.Epoch++
	next.Members = without(next.Members, dead)
	next.Learners = without(next.Learners, dead)
	a.startProposal(next.Epoch, next, now)
}

// ProposeView lets an operator (or the join tool) reconfigure explicitly:
// e.g. add a learner, or promote a caught-up learner to member.
func (a *Agent) ProposeView(members, learners []proto.NodeID) {
	next := proto.View{Epoch: a.view.Epoch + 1,
		Members:  append([]proto.NodeID(nil), members...),
		Learners: append([]proto.NodeID(nil), learners...)}
	sort.Slice(next.Members, func(i, j int) bool { return next.Members[i] < next.Members[j] })
	sort.Slice(next.Learners, func(i, j int) bool { return next.Learners[i] < next.Learners[j] })
	a.startProposal(next.Epoch, next, a.env.Now())
}

func (a *Agent) startProposal(inst uint32, v proto.View, now time.Duration) {
	if inst <= a.view.Epoch {
		return // already decided
	}
	a.ballotGen++
	b := a.ballotGen<<8 | uint64(a.id)
	a.prop = &proposal{
		instance: inst, ballot: b, view: v,
		promises: make(map[proto.NodeID]Promise),
		accepts:  make(map[proto.NodeID]bool),
		phase:    1,
		deadline: now + 4*a.cfg.HeartbeatEvery,
	}
	for _, n := range a.cfg.All {
		if n == a.id {
			a.onPrepare(a.id, Prepare{Instance: inst, Ballot: b})
		} else {
			a.env.Send(n, Prepare{Instance: inst, Ballot: b})
		}
	}
}

// Deliver routes a membership message.
func (a *Agent) Deliver(from proto.NodeID, msg any) {
	switch t := msg.(type) {
	case Heartbeat:
		a.onHeartbeat(from, t)
	case ViewReq:
		a.env.Send(from, ViewCommit{View: a.view})
	case ViewCommit:
		a.install(t.View)
	case Prepare:
		a.onPrepare(from, t)
	case Promise:
		a.onPromise(from, t)
	case Accept:
		a.onAccept(from, t)
	case Accepted:
		a.onAccepted(from, t)
	default:
		panic("membership: unknown message type")
	}
}

func (a *Agent) onHeartbeat(from proto.NodeID, hb Heartbeat) {
	a.lastHeard[from] = a.env.Now()
	if hb.Epoch > a.view.Epoch {
		a.env.Send(from, ViewReq{})
	}
	if a.cfg.OnPeerAhead == nil || a.cfg.Epochs == nil || len(hb.ShardEpochs) == 0 {
		return
	}
	// Per-shard lag detection: the node-level epoch check above cannot see a
	// single shard stuck behind (the agent's view may match while a shard
	// missed its install). Compare vectors elementwise; a peer ahead anywhere
	// hands the whole vector to the hook.
	mine := a.cfg.Epochs()
	for i, e := range hb.ShardEpochs {
		if i >= len(mine) {
			break
		}
		if e > mine[i] {
			a.cfg.OnPeerAhead(from, hb.ShardEpochs)
			return
		}
	}
}

func (a *Agent) inst(i uint32) *instance {
	in := a.instances[i]
	if in == nil {
		in = &instance{}
		a.instances[i] = in
	}
	return in
}

func (a *Agent) onPrepare(from proto.NodeID, p Prepare) {
	if p.Instance <= a.view.Epoch {
		// Already decided: help the laggard proposer catch up.
		a.send(from, ViewCommit{View: a.view})
		return
	}
	in := a.inst(p.Instance)
	if p.Ballot < in.promised {
		return // silent reject; proposer retries with a higher ballot
	}
	in.promised = p.Ballot
	a.send(from, Promise{
		Instance: p.Instance, Ballot: p.Ballot,
		AcceptedBallot: in.acceptedBallot, AcceptedView: in.acceptedView,
		HasAccepted: in.hasAccepted,
	})
}

func (a *Agent) onPromise(from proto.NodeID, p Promise) {
	pr := a.prop
	if pr == nil || pr.phase != 1 || p.Instance != pr.instance || p.Ballot != pr.ballot {
		return
	}
	pr.promises[from] = p
	if len(pr.promises) < a.quorum() {
		return
	}
	// Paxos safety: adopt the highest-ballot previously accepted value.
	var best *Promise
	for _, prm := range pr.promises {
		prm := prm
		if prm.HasAccepted && (best == nil || prm.AcceptedBallot > best.AcceptedBallot) {
			best = &prm
		}
	}
	if best != nil {
		pr.view = best.AcceptedView
	}
	pr.phase = 2
	for _, n := range a.cfg.All {
		msg := Accept{Instance: pr.instance, Ballot: pr.ballot, View: pr.view}
		if n == a.id {
			a.onAccept(a.id, msg)
		} else {
			a.env.Send(n, msg)
		}
	}
}

func (a *Agent) onAccept(from proto.NodeID, ac Accept) {
	if ac.Instance <= a.view.Epoch {
		a.send(from, ViewCommit{View: a.view})
		return
	}
	in := a.inst(ac.Instance)
	if ac.Ballot < in.promised {
		return
	}
	in.promised = ac.Ballot
	in.acceptedBallot = ac.Ballot
	in.acceptedView = ac.View
	in.hasAccepted = true
	a.send(from, Accepted{Instance: ac.Instance, Ballot: ac.Ballot})
}

func (a *Agent) onAccepted(from proto.NodeID, ac Accepted) {
	pr := a.prop
	if pr == nil || pr.phase != 2 || ac.Instance != pr.instance || ac.Ballot != pr.ballot {
		return
	}
	pr.accepts[from] = true
	if len(pr.accepts) < a.quorum() {
		return
	}
	// Decided: commit everywhere (including any node outside the new view,
	// so removed nodes learn they are out).
	decided := pr.view
	a.prop = nil
	for _, n := range a.cfg.All {
		if n != a.id {
			a.env.Send(n, ViewCommit{View: decided})
		}
	}
	a.install(decided)
}

// send delivers locally when from == self (Paxos self-messaging), otherwise
// over the network.
func (a *Agent) send(to proto.NodeID, msg any) {
	if to == a.id {
		a.Deliver(a.id, msg)
		return
	}
	a.env.Send(to, msg)
}

// ViewLog returns the retained views with epochs strictly above since, in
// ascending epoch order (cloned; callers may hold them across installs).
// This is what a peer serves to a rejoining or lagging node so it can
// replay the epochs it missed.
func (a *Agent) ViewLog(since uint32) []proto.View {
	var out []proto.View
	for _, v := range a.vlog {
		if v.Epoch > since {
			out = append(out, v.Clone())
		}
	}
	return out
}

// Redelivered reports how many installs the <=-epoch guard dropped —
// duplicate or stale ViewCommit deliveries. Redelivery is idempotent (OnView
// fires once per epoch) but must not be invisible: a rising counter under a
// steady view is how operators see a peer stuck re-sending.
func (a *Agent) Redelivered() uint64 { return a.redelivered }

// Proposing reports whether this agent has a reconfiguration proposal in
// flight (phase 1 or 2 of its Paxos instance).
func (a *Agent) Proposing() bool { return a.prop != nil }

func (a *Agent) logView(v proto.View) {
	a.vlog = append(a.vlog, v.Clone())
	if len(a.vlog) > viewLogCap {
		// Drop the oldest; copy so the backing array does not pin them.
		a.vlog = append(a.vlog[:0:0], a.vlog[len(a.vlog)-viewLogCap:]...)
	}
}

func (a *Agent) install(v proto.View) {
	if v.Epoch <= a.view.Epoch {
		a.redelivered++
		return
	}
	a.view = v.Clone()
	a.logView(a.view)
	// Drop consensus state for decided instances.
	for i := range a.instances {
		if i <= v.Epoch {
			delete(a.instances, i)
		}
	}
	if a.prop != nil && a.prop.instance <= v.Epoch {
		a.prop = nil
	}
	if a.cfg.OnView != nil {
		a.cfg.OnView(a.view)
	}
}

func contains(ns []proto.NodeID, x proto.NodeID) bool {
	for _, n := range ns {
		if n == x {
			return true
		}
	}
	return false
}

// without returns ns minus drop in a freshly allocated slice. It must not
// write through ns: callers pass live view member lists (and cfg.All), and
// the previous `ns[:0]` in-place filter silently corrupted the caller's
// slice whenever a proposal dropped nodes.
func without(ns, drop []proto.NodeID) []proto.NodeID {
	out := make([]proto.NodeID, 0, len(ns))
	for _, n := range ns {
		if !contains(drop, n) {
			out = append(out, n)
		}
	}
	return out
}
