package kvs

import (
	"encoding/binary"
	"fmt"
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/proto"
)

func TestGetMissing(t *testing.T) {
	s := New(4)
	if _, ok := s.Get(42); ok {
		t.Fatal("missing key reported present")
	}
	if s.Len() != 0 {
		t.Fatal("empty store has non-zero len")
	}
}

func TestUpdateThenGet(t *testing.T) {
	s := New(4)
	e := Entry{Value: proto.Value("hello"), TS: proto.TS{Version: 2, CID: 1}, State: Valid, RMW: true}
	s.Update(7, e)
	got, ok := s.Get(7)
	if !ok {
		t.Fatal("key missing after update")
	}
	if string(got.Value) != "hello" || got.TS != e.TS || got.State != Valid || !got.RMW {
		t.Fatalf("got %+v", got)
	}
	if s.Len() != 1 {
		t.Fatalf("len=%d", s.Len())
	}
}

func TestSetState(t *testing.T) {
	s := New(4)
	s.SetState(1, Valid) // absent: no-op, no panic
	s.Update(1, Entry{Value: proto.Value("v"), TS: proto.TS{Version: 4}, State: Invalid})
	s.SetState(1, Valid)
	got, _ := s.Get(1)
	if got.State != Valid || string(got.Value) != "v" || got.TS.Version != 4 {
		t.Fatalf("SetState clobbered entry: %+v", got)
	}
}

func TestOverwriteReplaces(t *testing.T) {
	s := New(1)
	s.Update(1, Entry{Value: proto.Value("a"), TS: proto.TS{Version: 1}, State: Valid})
	s.Update(1, Entry{Value: proto.Value("b"), TS: proto.TS{Version: 3}, State: Invalid})
	got, _ := s.Get(1)
	if string(got.Value) != "b" || got.TS.Version != 3 || got.State != Invalid {
		t.Fatalf("got %+v", got)
	}
	if s.Len() != 1 {
		t.Fatal("overwrite grew the store")
	}
}

func TestKeyStateStrings(t *testing.T) {
	for st, want := range map[KeyState]string{
		Valid: "Valid", Invalid: "Invalid", Write: "Write", Replay: "Replay",
		Trans: "Trans", KeyState(99): "KeyState(?)",
	} {
		if st.String() != want {
			t.Fatalf("%d.String()=%q", st, st.String())
		}
	}
	if !Valid.Readable() || Invalid.Readable() || Write.Readable() || Replay.Readable() || Trans.Readable() {
		t.Fatal("Readable wrong: only Valid keys serve local reads")
	}
}

func TestRange(t *testing.T) {
	s := New(8)
	for i := proto.Key(0); i < 100; i++ {
		s.Update(i, Entry{Value: proto.Value{byte(i)}, TS: proto.TS{Version: uint32(i)}})
	}
	seen := make(map[proto.Key]bool)
	s.Range(func(k proto.Key, e Entry) bool {
		if e.TS.Version != uint32(k) {
			t.Fatalf("entry mismatch for %d: %+v", k, e)
		}
		seen[k] = true
		return true
	})
	if len(seen) != 100 {
		t.Fatalf("ranged %d/100", len(seen))
	}
	// Early stop.
	n := 0
	s.Range(func(proto.Key, Entry) bool { n++; return n < 10 })
	if n != 10 {
		t.Fatalf("early stop visited %d", n)
	}
}

// One writer per key mutating, many readers: every read must observe a
// consistent (value, ts) pair — the CRCW guarantee the protocol relies on.
func TestConcurrentReadersSeeConsistentRecords(t *testing.T) {
	s := New(16)
	const keys = 8
	const versions = 2000
	var wg sync.WaitGroup
	stop := make(chan struct{})

	// Writers: one goroutine per key (single-writer discipline).
	for k := proto.Key(0); k < keys; k++ {
		wg.Add(1)
		go func(k proto.Key) {
			defer wg.Done()
			for v := uint32(1); v <= versions; v++ {
				val := make(proto.Value, 8)
				binary.LittleEndian.PutUint64(val, uint64(v))
				st := Valid
				if v%2 == 0 {
					st = Invalid
				}
				s.Update(k, Entry{Value: val, TS: proto.TS{Version: v}, State: st})
			}
		}(k)
	}

	// Readers: verify value matches TS in every observed snapshot.
	errs := make(chan error, 4)
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				for k := proto.Key(0); k < keys; k++ {
					e, ok := s.Get(k)
					if !ok {
						continue
					}
					got := binary.LittleEndian.Uint64(e.Value)
					if got != uint64(e.TS.Version) {
						select {
						case errs <- fmt.Errorf("torn read: val=%d ts=%d", got, e.TS.Version):
						default:
						}
						return
					}
					wantState := Valid
					if e.TS.Version%2 == 0 {
						wantState = Invalid
					}
					if e.State != wantState {
						select {
						case errs <- fmt.Errorf("state/ts mismatch: %v ts=%d", e.State, e.TS.Version):
						default:
						}
						return
					}
				}
			}
		}()
	}

	// Let writers finish, then stop readers.
	done := make(chan struct{})
	go func() {
		defer close(done)
		wg.Wait()
	}()
	for k := proto.Key(0); k < keys; k++ {
		for {
			e, ok := s.Get(k)
			if ok && e.TS.Version == versions {
				break
			}
			select {
			case err := <-errs:
				t.Fatal(err)
			default:
			}
		}
	}
	close(stop)
	<-done
	select {
	case err := <-errs:
		t.Fatal(err)
	default:
	}
}

// Property: a store behaves like a map for sequential updates.
func TestStoreMatchesMapModel(t *testing.T) {
	type op struct {
		Key proto.Key
		Ver uint32
	}
	f := func(ops []op) bool {
		s := New(4)
		model := make(map[proto.Key]uint32)
		for _, o := range ops {
			k := o.Key % 32
			s.Update(k, Entry{TS: proto.TS{Version: o.Ver}, State: Valid})
			model[k] = o.Ver
		}
		if s.Len() != len(model) {
			return false
		}
		for k, v := range model {
			e, ok := s.Get(k)
			if !ok || e.TS.Version != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestShardCountRounding(t *testing.T) {
	for _, n := range []int{0, 1, 3, 16, 17} {
		s := New(n)
		// All keys must route to a valid shard.
		for k := proto.Key(0); k < 1000; k++ {
			s.Update(k, Entry{State: Valid})
		}
		if s.Len() != 1000 {
			t.Fatalf("shards=%d len=%d", n, s.Len())
		}
	}
}

func BenchmarkGet(b *testing.B) {
	s := New(64)
	for k := proto.Key(0); k < 1<<16; k++ {
		s.Update(k, Entry{Value: make(proto.Value, 32), State: Valid})
	}
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		k := proto.Key(0)
		for pb.Next() {
			k = (k + 7919) & (1<<16 - 1)
			s.Get(k)
		}
	})
}

func BenchmarkUpdate(b *testing.B) {
	s := New(64)
	e := Entry{Value: make(proto.Value, 32), State: Valid}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Update(proto.Key(i&(1<<16-1)), e)
	}
}
