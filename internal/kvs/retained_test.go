package kvs

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/proto"
	"repro/internal/refbuf"
)

// TestGetRetainedPinsAcrossReplacement pins the GetRetained contract
// single-threaded first: a pinned buffer survives the entry's replacement,
// and the pin is the only thing keeping it out of the pool.
func TestGetRetainedPinsAcrossReplacement(t *testing.T) {
	st := New(4)
	pool := refbuf.NewPool()

	fb := pool.Get(8)
	copy(fb.Bytes(), "original")
	st.Update(1, Entry{Value: fb.Bytes()[0:8:8], TS: proto.TS{Version: 2}, Owner: fb})

	e, ok := st.GetRetained(1)
	if !ok || e.Owner != fb {
		t.Fatalf("GetRetained: %+v ok=%v", e, ok)
	}
	if got := fb.Refs(); got != 2 {
		t.Fatalf("refs after pin = %d, want 2 (store + reader)", got)
	}

	// Replace the entry: the store's reference drops, the reader's holds.
	st.Update(1, Entry{Value: proto.Value("successor"), TS: proto.TS{Version: 4}})
	if got := fb.Refs(); got != 1 {
		t.Fatalf("refs after replacement = %d, want 1 (reader's pin)", got)
	}
	if string(e.Value) != "original" {
		t.Fatalf("pinned value changed: %q", e.Value)
	}
	e.Owner.Release()
	if got := fb.Refs(); got != 0 {
		t.Fatalf("refs after reader release = %d, want 0", got)
	}

	// Owner-less entries come back unpinned.
	e2, ok := st.GetRetained(1)
	if !ok || e2.Owner != nil {
		t.Fatalf("owner-less GetRetained: %+v ok=%v", e2, ok)
	}
}

// TestGetRetainedRace storms GetRetained readers against a single writer
// replacing the entry with owner-backed values drawn from one pool — the
// exact shape of the live read path (server fast reads) racing the INV adopt
// path. Every value is filled with one repeated byte, so a reader holding a
// buffer past its release window (a refcount bug) would observe a torn or
// recycled value. Run under -race this also checks the pin protocol's
// happens-before edges.
func TestGetRetainedRace(t *testing.T) {
	st := New(4)
	pool := refbuf.NewPool()
	const key = proto.Key(7)
	const valLen = 128

	seed := pool.Get(valLen)
	for i := range seed.Bytes() {
		seed.Bytes()[i] = 1
	}
	st.Update(key, Entry{Value: seed.Bytes()[0:valLen:valLen], TS: proto.TS{Version: 1}, Owner: seed})

	var stop atomic.Bool
	var torn atomic.Int64
	var wg sync.WaitGroup

	// Single writer per key — the store's discipline — churning owner-backed
	// replacements as fast as the pool recycles. Bounded so the storm
	// terminates deterministically; readers spin until the writer is done.
	const writes = 20000
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer stop.Store(true)
		for i := uint32(2); i < writes; i++ {
			fb := pool.Get(valLen)
			b := fb.Bytes()
			fill := byte(i%250 + 1)
			for j := range b {
				b[j] = fill
			}
			st.Update(key, Entry{Value: b[0:valLen:valLen], TS: proto.TS{Version: i}, Owner: fb})
		}
	}()

	readers := runtime.GOMAXPROCS(0)
	if readers < 4 {
		readers = 4
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				e, ok := st.GetRetained(key)
				if !ok {
					continue
				}
				// A consistent snapshot is all-one-byte; anything else means
				// the buffer was recycled while we held the pin.
				first := e.Value[0]
				for _, c := range e.Value {
					if c != first {
						torn.Add(1)
						break
					}
				}
				if e.Owner != nil {
					e.Owner.Release()
				}
			}
		}()
	}

	wg.Wait()

	if n := torn.Load(); n > 0 {
		t.Fatalf("%d torn/recycled reads observed through GetRetained pins", n)
	}
	// The final entry still holds exactly the store's reference.
	e, ok := st.Get(key)
	if !ok || e.Owner == nil {
		t.Fatalf("final entry: %+v ok=%v", e, ok)
	}
	if got := e.Owner.Refs(); got != 1 {
		t.Fatalf("final refs = %d, want 1 (leak or over-release in the storm)", got)
	}
}

// TestSetStateTransfersOwnership checks the VAL transition (Invalid→Valid)
// republishes the entry without touching the refcount: a transfer of the
// store's single reference, not a retain/release pair.
func TestSetStateTransfersOwnership(t *testing.T) {
	st := New(4)
	pool := refbuf.NewPool()
	fb := pool.Get(4)
	copy(fb.Bytes(), "vvvv")
	st.Update(2, Entry{Value: fb.Bytes()[0:4:4], TS: proto.TS{Version: 2}, State: Invalid, Owner: fb})

	st.SetState(2, Valid)
	e, _ := st.Get(2)
	if e.State != Valid || e.Owner != fb {
		t.Fatalf("after SetState: %+v", e)
	}
	if got := fb.Refs(); got != 1 {
		t.Fatalf("refs after SetState = %d, want 1 (pure transfer)", got)
	}

	st.Update(2, Entry{Value: proto.Value("x"), TS: proto.TS{Version: 4}})
	if got := fb.Refs(); got != 0 {
		t.Fatalf("refs after replacement = %d, want 0", got)
	}
}
