// Package kvs implements the in-memory key-value store substrate that
// HermesKV builds on (paper §4.1): a sharded hash table supporting
// concurrent-read / concurrent-write (CRCW) access with lock-free readers,
// in the style of ccKVS/MICA. The paper's C implementation uses seqlocks for
// torn-read detection; Go cannot express seqlock field reads without data
// races, so this package provides the same semantics — single writer per
// key, readers never block writers, readers always observe a consistent
// record — via RCU-style atomic publication of immutable records. The
// concurrency structure the evaluation depends on is preserved: local
// linearizable reads are served on the read path without entering the
// protocol's critical path, by checking State==Valid on the loaded record.
//
// Beyond the raw value, every entry carries the Hermes per-key metadata the
// read path needs: the logical timestamp, the replica state and the RMW flag
// of the last update (used by write replays, §3.1/§3.6).
package kvs

import (
	"sync"
	"sync/atomic"

	"repro/internal/proto"
	"repro/internal/refbuf"
)

// KeyState is the Hermes per-key replica state (paper §3.2). It lives here
// rather than in the protocol package because the store is what the
// lock-free read path inspects.
type KeyState uint8

const (
	// Valid: the local value is the most recent committed one; reads may be
	// served locally.
	Valid KeyState = iota
	// Invalid: a write is in flight elsewhere; reads must stall.
	Invalid
	// Write: this replica coordinates an in-flight write to the key.
	Write
	// Replay: this replica replays a (possibly failed) write it learned of.
	Replay
	// Trans: a coordinator's in-flight update was invalidated by a
	// higher-timestamp concurrent write; tracked so the coordinator can
	// still report its own write's completion (paper footnote 7).
	Trans
)

func (s KeyState) String() string {
	switch s {
	case Valid:
		return "Valid"
	case Invalid:
		return "Invalid"
	case Write:
		return "Write"
	case Replay:
		return "Replay"
	case Trans:
		return "Trans"
	default:
		return "KeyState(?)"
	}
}

// Readable reports whether a local linearizable read may be served.
func (s KeyState) Readable() bool { return s == Valid }

// Entry is a snapshot of one key's replicated record. Entries are immutable
// once published; Value must not be mutated after Update.
type Entry struct {
	Value proto.Value
	TS    proto.TS
	State KeyState
	RMW   bool // RMW_flag of the last update (paper §3.6)

	// Owner, when non-nil, is the pooled wire-frame buffer Value aliases —
	// the zero-copy adoption path: the published entry holds exactly one
	// reference, transferred from the INV that carried the value. Update
	// releases the replaced entry's reference after publishing the new one,
	// so lock-free readers that pinned the old buffer (GetRetained) always
	// see a republished slot before the count can drop. Nil means Value is
	// a private immutable heap slice.
	Owner *refbuf.Buf
}

// Store is the sharded CRCW store.
type Store struct {
	shards []shard
	mask   uint64
}

type shard struct {
	mu sync.RWMutex // guards the index map only
	m  map[proto.Key]*slot
}

// slot holds the atomically published current record for one key. The
// protocol goroutine is the only writer per key (single-writer discipline,
// as in the paper's per-worker key ownership); readers Load concurrently.
type slot struct {
	p atomic.Pointer[Entry]
}

// New returns a Store with the given shard count (rounded up to a power of
// two; minimum 1).
func New(shards int) *Store {
	n := 1
	for n < shards {
		n <<= 1
	}
	s := &Store{shards: make([]shard, n), mask: uint64(n - 1)}
	for i := range s.shards {
		s.shards[i].m = make(map[proto.Key]*slot)
	}
	return s
}

func (s *Store) shardOf(k proto.Key) *shard {
	h := uint64(k)
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	return &s.shards[h&s.mask]
}

func (s *Store) lookup(k proto.Key) *slot {
	sh := s.shardOf(k)
	sh.mu.RLock()
	sl := sh.m[k]
	sh.mu.RUnlock()
	return sl
}

// Get returns a consistent snapshot of the key's entry and whether the key
// exists. Safe for any number of concurrent readers and one writer per key.
func (s *Store) Get(k proto.Key) (Entry, bool) {
	sl := s.lookup(k)
	if sl == nil {
		return Entry{}, false
	}
	e := sl.p.Load()
	if e == nil {
		return Entry{}, false
	}
	return *e, true
}

// Update installs a full entry for k (value, timestamp, state, rmw flag),
// adopting e.Owner's reference if set. The caller must be the key's single
// writer. The replaced entry's buffer reference is released only after the
// new entry is published: a concurrent GetRetained that pinned the old
// buffer before the swap keeps it alive, and one that loses the
// TryRetain race is guaranteed to observe the new entry on reload.
func (s *Store) Update(k proto.Key, e Entry) {
	sl := s.lookup(k)
	if sl == nil {
		sh := s.shardOf(k)
		sh.mu.Lock()
		sl = sh.m[k]
		if sl == nil {
			sl = &slot{}
			sh.m[k] = sl
		}
		sh.mu.Unlock()
	}
	old := sl.p.Swap(&e)
	if old != nil && old.Owner != nil {
		// Each published entry holds its own reference, so this release is
		// unconditional even when old and new alias the same frame buffer.
		old.Owner.Release()
	}
}

// SetState transitions only the replica state of k (e.g. Invalid -> Valid on
// a VAL message) leaving value and timestamp untouched. No-op if the key is
// absent. The caller must be the key's single writer. The republished entry
// inherits the old one's buffer reference — a transfer, not a new retain,
// so no release happens here.
func (s *Store) SetState(k proto.Key, st KeyState) {
	sl := s.lookup(k)
	if sl == nil {
		return
	}
	cur := sl.p.Load()
	if cur == nil {
		return
	}
	e := *cur
	e.State = st
	sl.p.Store(&e)
}

// GetRetained is Get for readers that will use the value outside the key's
// event-loop turn: when the entry's value aliases a pooled frame buffer,
// the buffer comes back pinned (one reference the caller must Release when
// done with the bytes). An owner-less entry needs no pin — its value is
// immutable heap memory — and returns Owner nil.
//
// The pin protocol: TryRetain the loaded entry's buffer, then re-load the
// slot and require the same entry. Update releases a replaced entry's
// reference only after publishing its successor, so a successful retain on
// a stale entry is always caught by the pointer re-check (the transient
// extra reference is balance-neutral), and a failed TryRetain means a
// fresher entry is already published.
func (s *Store) GetRetained(k proto.Key) (Entry, bool) {
	sl := s.lookup(k)
	if sl == nil {
		return Entry{}, false
	}
	for {
		ep := sl.p.Load()
		if ep == nil {
			return Entry{}, false
		}
		if ep.Owner == nil {
			return *ep, true
		}
		if ep.Owner.TryRetain() {
			if sl.p.Load() == ep {
				return *ep, true
			}
			ep.Owner.Release()
		}
	}
}

// Len returns the number of keys stored.
func (s *Store) Len() int {
	n := 0
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		n += len(sh.m)
		sh.mu.RUnlock()
	}
	return n
}

// Range calls fn for a snapshot of every entry; used by shadow-replica state
// transfer (paper §3.4 Recovery) to read chunks of the datastore. Iteration
// order is unspecified; fn must not call back into the Store. Returns early
// if fn returns false.
func (s *Store) Range(fn func(k proto.Key, e Entry) bool) {
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		keys := make([]proto.Key, 0, len(sh.m))
		slots := make([]*slot, 0, len(sh.m))
		for k, sl := range sh.m {
			keys = append(keys, k)
			slots = append(slots, sl)
		}
		sh.mu.RUnlock()
		for j, sl := range slots {
			if e := sl.p.Load(); e != nil {
				if !fn(keys[j], *e) {
					return
				}
			}
		}
	}
}
