// Lockservice: the paper motivates Hermes with lock services like
// ZooKeeper and Chubby (§2.1) and with CAS-based lock acquisition (§3.6).
// This example builds a small distributed lock manager on the public API:
// a lock is a key, acquisition is CAS(free -> owner), release is
// CAS(owner -> free); contenders race from different replicas and the
// protocol guarantees at most one of the concurrent RMWs commits.
//
//	go run ./examples/lockservice
package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"sync"

	"repro/internal/cluster"
	"repro/internal/proto"
)

// LockManager wraps one replica's view of the lock table.
type LockManager struct {
	node *cluster.Node
}

// Acquire takes the lock for owner; returns false (and the holder) if held.
func (lm *LockManager) Acquire(ctx context.Context, lock proto.Key, owner string) (bool, string, error) {
	for {
		ok, observed, err := lm.node.CAS(ctx, lock, nil, proto.Value(owner))
		if errors.Is(err, cluster.ErrAborted) {
			continue // lost a race; retry the RMW (paper §3.6)
		}
		if err != nil {
			return false, "", err
		}
		if ok {
			return true, owner, nil
		}
		return false, string(observed), nil
	}
}

// Release frees the lock iff owner still holds it.
func (lm *LockManager) Release(ctx context.Context, lock proto.Key, owner string) error {
	ok, observed, err := lm.node.CAS(ctx, lock, proto.Value(owner), nil)
	if err != nil {
		return err
	}
	if !ok {
		return fmt.Errorf("lock held by %q, not %q", observed, owner)
	}
	return nil
}

func main() {
	group := cluster.NewLocal(cluster.LocalConfig{N: 3})
	defer group.Close()
	ctx := context.Background()
	const lock = proto.Key(100)

	// Three clients, each attached to a different replica, race for the
	// same lock and then take turns in a critical section guarded by it.
	var wg sync.WaitGroup
	acquisitions := make([]string, 0, 9)
	var mu sync.Mutex // protects the trace only; the lock protects the CS
	for i, n := range group.Nodes {
		wg.Add(1)
		go func(i int, n *cluster.Node) {
			defer wg.Done()
			lm := &LockManager{node: n}
			me := fmt.Sprintf("client-%d", i)
			for turns := 0; turns < 3; {
				got, holder, err := lm.Acquire(ctx, lock, me)
				if err != nil {
					log.Fatalf("%s acquire: %v", me, err)
				}
				if !got {
					_ = holder // busy-wait on contention
					continue
				}
				mu.Lock()
				acquisitions = append(acquisitions, me)
				mu.Unlock()
				if err := lm.Release(ctx, lock, me); err != nil {
					log.Fatalf("%s release: %v", me, err)
				}
				turns++
			}
		}(i, n)
	}
	wg.Wait()

	fmt.Printf("%d successful lock acquisitions, mutually exclusive by CAS:\n", len(acquisitions))
	for i, a := range acquisitions {
		fmt.Printf("  %2d: %s\n", i+1, a)
	}
	v, _ := group.Nodes[0].Read(ctx, lock)
	fmt.Printf("final lock state: %q (free)\n", v)
}
