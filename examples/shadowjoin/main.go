// Shadowjoin: adding a replica to a running group (paper §3.4 "Recovery").
// The new node joins as a shadow replica (learner): it follows all writes
// but serves no clients, reconstructs the datastore by reading chunks from
// the members, and is promoted to a serving member once caught up.
//
//	go run ./examples/shadowjoin
package main

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/kvs"
	"repro/internal/proto"
	"repro/internal/sim"
	"repro/internal/workload"
)

func main() {
	c := sim.New(sim.Config{
		Nodes: 4, // 3 serving members + node 3 held in reserve
		Factory: func(id proto.NodeID, view proto.View, env proto.Env) proto.Replica {
			cfg := core.Config{ID: id, View: view, Env: env, MLT: 2 * time.Millisecond}
			if id == 3 {
				cfg.Learner = true
			}
			return core.New(cfg)
		},
		Net:  sim.DefaultNet(),
		Seed: 7,
	})
	// Initial membership: {0,1,2} serving; node 3 not yet in the group.
	v1 := proto.View{Epoch: 2, Members: []proto.NodeID{0, 1, 2}}
	c.InstallView(v1)

	// Seed the datastore under write traffic.
	res := c.RunWorkload(sim.WorkloadParams{
		Workload:        workload.Config{Keys: 2048, WriteRatio: 0.3, ValueSize: 32},
		SessionsPerNode: 2,
		Duration:        5 * time.Millisecond,
	})
	fmt.Printf("seeded datastore: %d ops done, members have %d keys\n",
		res.Ops, c.Replica(0).(*core.Hermes).Store().Len())

	// m-update: node 3 joins as a learner. It starts chunk transfer while
	// new writes reach it through INVs (it is in every write set).
	v2 := proto.View{Epoch: 3, Members: []proto.NodeID{0, 1, 2}, Learners: []proto.NodeID{3}}
	c.InstallView(v2)
	learner := c.Replica(3).(*core.Hermes)

	// Keep writing while the learner catches up.
	c.RunWorkload(sim.WorkloadParams{
		Workload:        workload.Config{Keys: 2048, WriteRatio: 0.3, ValueSize: 32},
		SessionsPerNode: 2,
		Duration:        10 * time.Millisecond,
	})
	for !learner.CaughtUp() {
		c.Engine().RunUntil(c.Engine().Now() + time.Millisecond)
	}
	fmt.Printf("learner caught up with %d keys\n", learner.Store().Len())

	// Promote: node 3 becomes a serving member.
	v3 := proto.View{Epoch: 4, Members: []proto.NodeID{0, 1, 2, 3}}
	c.InstallView(v3)

	// Verify: the promoted replica serves a linearizable local read and its
	// records agree with the group's.
	var got *proto.Completion
	c.Submit(3, proto.ClientOp{ID: 1 << 50, Kind: proto.OpRead, Key: 42},
		func(comp proto.Completion) { got = &comp })
	c.Engine().RunUntil(c.Engine().Now() + 2*time.Millisecond)
	if got == nil || got.Status != proto.OK {
		fmt.Println("promoted replica failed to serve!")
		return
	}
	fmt.Printf("promoted replica serves reads (key 42 -> %d bytes)\n", len(got.Value))

	// Cross-check a sample of keys against member 0.
	mismatches := 0
	checked := 0
	c.Replica(0).(*core.Hermes).Store().Range(func(k proto.Key, e kvs.Entry) bool {
		if le, ok := learner.Store().Get(k); ok && le.TS == e.TS {
			checked++
			return checked < 500
		}
		// Keys still settling (in-flight VALs) are not mismatches; compare
		// timestamps only when both are valid.
		if le, ok := learner.Store().Get(k); ok && le.TS != e.TS {
			mismatches++
		}
		checked++
		return checked < 500
	})
	fmt.Printf("sampled %d keys against a member: %d timestamp mismatches\n", checked, mismatches)
}
