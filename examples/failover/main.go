// Failover: the §3.5 / Figure 4 scenario end-to-end on the simulator with
// reliable membership enabled — a replica crashes mid-write, the membership
// reconfigures after suspicion + lease expiry, a write replay completes the
// failed coordinator's write, and the group keeps serving.
//
//	go run ./examples/failover
package main

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/proto"
	"repro/internal/sim"
	"repro/internal/workload"
)

func main() {
	c := sim.New(sim.Config{
		Nodes: 5,
		Factory: func(id proto.NodeID, view proto.View, env proto.Env) proto.Replica {
			return core.New(core.Config{ID: id, View: view, Env: env, MLT: 2 * time.Millisecond})
		},
		Net:  sim.DefaultNet(),
		Seed: 1,
		RM: &sim.RMParams{
			HeartbeatEvery: 200 * time.Microsecond,
			SuspectAfter:   time.Millisecond,
			LeaseDur:       2 * time.Millisecond,
		},
	})

	fmt.Println("5-replica Hermes group; node 4 will crash at t=10ms.")
	c.CrashAt(4, 10*time.Millisecond)

	res := c.RunWorkload(sim.WorkloadParams{
		Workload:        workload.Config{Keys: 1 << 12, WriteRatio: 0.05, ValueSize: 32},
		SessionsPerNode: 4,
		Duration:        30 * time.Millisecond,
		SeriesBucket:    time.Millisecond,
	})

	fmt.Printf("m-updates installed across replicas: %d\n", c.ViewChanges)
	fmt.Println("throughput over time (ops per 1ms bucket):")
	for i, n := range res.Series.Buckets() {
		marker := ""
		if i == 10 {
			marker = "   <- crash"
		}
		bar := int(n / 150)
		fmt.Printf("  %2dms %6d %s%s\n", i, n, stars(bar), marker)
	}

	var replays, retrans uint64
	for id := proto.NodeID(0); id < 4; id++ {
		m := c.Replica(id).(*core.Hermes).Metrics()
		replays += m.Replays
		retrans += m.Retransmits
	}
	fmt.Printf("write replays: %d, INV retransmissions: %d\n", replays, retrans)
	fmt.Println("the dip is writes blocked on the dead node's ACKs; recovery is the")
	fmt.Println("m-update (suspicion + lease expiry) after which pending writes commit")
	fmt.Println("against the 4-node membership and stuck keys are replayed (paper §3.4).")
}

func stars(n int) string {
	if n > 60 {
		n = 60
	}
	out := make([]byte, n)
	for i := range out {
		out[i] = '*'
	}
	return string(out)
}
