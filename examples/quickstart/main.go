// Quickstart: stand up a 3-replica Hermes group in one process, write at
// one replica, read it back — linearizably — at the others, and use an RMW.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"net"

	"repro/internal/client"
	"repro/internal/cluster"
	"repro/internal/proto"
	"repro/internal/server"
)

func main() {
	// Three replicas over an in-process transport. For a real deployment
	// over TCP see cmd/hermes-node.
	group := cluster.NewLocal(cluster.LocalConfig{N: 3})
	defer group.Close()
	ctx := context.Background()

	// Writes are decentralized: any replica coordinates its own writes.
	if err := group.Nodes[0].Write(ctx, 1, proto.Value("hello hermes")); err != nil {
		log.Fatalf("write: %v", err)
	}

	// Reads are local at every replica and still linearizable: a committed
	// Hermes write has, by definition, reached all replicas.
	for _, n := range group.Nodes {
		v, err := n.Read(ctx, 1)
		if err != nil {
			log.Fatalf("read at %d: %v", n.ID(), err)
		}
		fmt.Printf("replica %d reads: %s\n", n.ID(), v)
	}

	// Single-key RMWs: fetch-and-add a counter from different replicas.
	for i, n := range group.Nodes {
		prior, err := n.FAA(ctx, 2, 10)
		if err != nil {
			log.Fatalf("faa: %v", err)
		}
		fmt.Printf("faa #%d at replica %d: prior=%d\n", i+1, n.ID(), prior)
	}
	v, _ := group.Nodes[0].Read(ctx, 2)
	fmt.Printf("counter: %d\n", proto.DecodeInt64(v))

	// Compare-and-swap.
	swapped, _, _ := group.Nodes[1].CAS(ctx, 1, proto.Value("hello hermes"), proto.Value("updated"))
	fmt.Printf("cas swapped: %v\n", swapped)

	// The wire: front a replica with the TCP serving layer and talk to it
	// with the pipelined client — the same stack `hermes-node -listen` and
	// `hermes-cli` run. Reads are still served lock-free, on the server's
	// session goroutine, without entering a shard event loop.
	srv := server.New(server.Config{Backend: group.Nodes[0]})
	defer srv.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatalf("listen: %v", err)
	}
	go srv.Serve(ln)

	c, err := client.Dial(ln.Addr().String(), client.Config{})
	if err != nil {
		log.Fatalf("dial: %v", err)
	}
	defer c.Close()
	if err := c.Write(3, proto.Value("over the wire")); err != nil {
		log.Fatalf("wire write: %v", err)
	}
	wv, err := c.Read(3)
	if err != nil {
		log.Fatalf("wire read: %v", err)
	}
	prior, err := c.FAA(2, 12)
	if err != nil {
		log.Fatalf("wire faa: %v", err)
	}
	fmt.Printf("wire read: %s (window %d); wire faa prior=%d\n", wv, c.Window(), prior)
}
