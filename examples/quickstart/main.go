// Quickstart: stand up a 3-replica Hermes group in one process, write at
// one replica, read it back — linearizably — at the others, and use an RMW.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/cluster"
	"repro/internal/proto"
)

func main() {
	// Three replicas over an in-process transport. For a real deployment
	// over TCP see cmd/hermes-node.
	group := cluster.NewLocal(cluster.LocalConfig{N: 3})
	defer group.Close()
	ctx := context.Background()

	// Writes are decentralized: any replica coordinates its own writes.
	if err := group.Nodes[0].Write(ctx, 1, proto.Value("hello hermes")); err != nil {
		log.Fatalf("write: %v", err)
	}

	// Reads are local at every replica and still linearizable: a committed
	// Hermes write has, by definition, reached all replicas.
	for _, n := range group.Nodes {
		v, err := n.Read(ctx, 1)
		if err != nil {
			log.Fatalf("read at %d: %v", n.ID(), err)
		}
		fmt.Printf("replica %d reads: %s\n", n.ID(), v)
	}

	// Single-key RMWs: fetch-and-add a counter from different replicas.
	for i, n := range group.Nodes {
		prior, err := n.FAA(ctx, 2, 10)
		if err != nil {
			log.Fatalf("faa: %v", err)
		}
		fmt.Printf("faa #%d at replica %d: prior=%d\n", i+1, n.ID(), prior)
	}
	v, _ := group.Nodes[0].Read(ctx, 2)
	fmt.Printf("counter: %d\n", proto.DecodeInt64(v))

	// Compare-and-swap.
	swapped, _, _ := group.Nodes[1].CAS(ctx, 1, proto.Value("hello hermes"), proto.Value("updated"))
	fmt.Printf("cas swapped: %v\n", swapped)
}
