// Package repro's root benchmarks regenerate the paper's evaluation —
// one testing.B benchmark per table and figure of §6, at reduced (Quick)
// scale so `go test -bench=. -benchmem` stays tractable. Full-scale runs
// and the recorded paper-vs-measured numbers live in cmd/hermes-bench and
// EXPERIMENTS.md.
//
// Custom metrics: Mops = millions of completed client requests per second
// of *simulated* time; p50us/p99us = request latency percentiles in µs.
package repro

import (
	"testing"
	"time"

	"repro/internal/bench"
)

func quick() bench.Scale { return bench.QuickScale() }

// point runs one configuration per benchmark iteration and reports
// simulated throughput/latency as custom metrics.
func point(b *testing.B, p bench.Point) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		p.Seed = int64(i)
		res := bench.Run(p, quick())
		b.ReportMetric(res.Throughput/1e6, "Mops")
		b.ReportMetric(float64(res.All.Median())/1e3, "p50us")
		b.ReportMetric(float64(res.All.P99())/1e3, "p99us")
	}
}

// --- Figure 5a: throughput vs write ratio, uniform, 5 nodes ---

func BenchmarkFig5a_Hermes_w01(b *testing.B) {
	point(b, bench.Point{System: bench.Hermes, Nodes: 5, WriteRatio: 0.01})
}
func BenchmarkFig5a_Hermes_w05(b *testing.B) {
	point(b, bench.Point{System: bench.Hermes, Nodes: 5, WriteRatio: 0.05})
}
func BenchmarkFig5a_Hermes_w20(b *testing.B) {
	point(b, bench.Point{System: bench.Hermes, Nodes: 5, WriteRatio: 0.20})
}
func BenchmarkFig5a_Hermes_w100(b *testing.B) {
	point(b, bench.Point{System: bench.Hermes, Nodes: 5, WriteRatio: 1})
}
func BenchmarkFig5a_CRAQ_w01(b *testing.B) {
	point(b, bench.Point{System: bench.CRAQ, Nodes: 5, WriteRatio: 0.01})
}
func BenchmarkFig5a_CRAQ_w05(b *testing.B) {
	point(b, bench.Point{System: bench.CRAQ, Nodes: 5, WriteRatio: 0.05})
}
func BenchmarkFig5a_CRAQ_w20(b *testing.B) {
	point(b, bench.Point{System: bench.CRAQ, Nodes: 5, WriteRatio: 0.20})
}
func BenchmarkFig5a_CRAQ_w100(b *testing.B) {
	point(b, bench.Point{System: bench.CRAQ, Nodes: 5, WriteRatio: 1})
}
func BenchmarkFig5a_ZAB_w01(b *testing.B) {
	point(b, bench.Point{System: bench.ZAB, Nodes: 5, WriteRatio: 0.01})
}
func BenchmarkFig5a_ZAB_w05(b *testing.B) {
	point(b, bench.Point{System: bench.ZAB, Nodes: 5, WriteRatio: 0.05})
}
func BenchmarkFig5a_ZAB_w20(b *testing.B) {
	point(b, bench.Point{System: bench.ZAB, Nodes: 5, WriteRatio: 0.20})
}
func BenchmarkFig5a_ZAB_w100(b *testing.B) {
	point(b, bench.Point{System: bench.ZAB, Nodes: 5, WriteRatio: 1})
}

// --- Figure 5b: Zipfian(0.99) skew ---

func BenchmarkFig5b_Hermes_w05(b *testing.B) {
	point(b, bench.Point{System: bench.Hermes, Nodes: 5, WriteRatio: 0.05, Zipf: true})
}
func BenchmarkFig5b_Hermes_w50(b *testing.B) {
	point(b, bench.Point{System: bench.Hermes, Nodes: 5, WriteRatio: 0.50, Zipf: true})
}
func BenchmarkFig5b_CRAQ_w05(b *testing.B) {
	point(b, bench.Point{System: bench.CRAQ, Nodes: 5, WriteRatio: 0.05, Zipf: true})
}
func BenchmarkFig5b_CRAQ_w50(b *testing.B) {
	point(b, bench.Point{System: bench.CRAQ, Nodes: 5, WriteRatio: 0.50, Zipf: true})
}
func BenchmarkFig5b_ZAB_w05(b *testing.B) {
	point(b, bench.Point{System: bench.ZAB, Nodes: 5, WriteRatio: 0.05, Zipf: true})
}

// --- Figure 6a: latency vs load at 5% writes (low / peak load points) ---

func BenchmarkFig6a_Hermes_load1(b *testing.B) {
	point(b, bench.Point{System: bench.Hermes, Nodes: 5, WriteRatio: 0.05, Sessions: 1})
}
func BenchmarkFig6a_Hermes_load16(b *testing.B) {
	point(b, bench.Point{System: bench.Hermes, Nodes: 5, WriteRatio: 0.05, Sessions: 16})
}
func BenchmarkFig6a_CRAQ_load1(b *testing.B) {
	point(b, bench.Point{System: bench.CRAQ, Nodes: 5, WriteRatio: 0.05, Sessions: 1})
}
func BenchmarkFig6a_CRAQ_load16(b *testing.B) {
	point(b, bench.Point{System: bench.CRAQ, Nodes: 5, WriteRatio: 0.05, Sessions: 16})
}
func BenchmarkFig6a_ZAB_load16(b *testing.B) {
	point(b, bench.Point{System: bench.ZAB, Nodes: 5, WriteRatio: 0.05, Sessions: 16})
}

// --- Figures 6b/6c: read/write latency split (write-latency benches) ---

func benchLatency(b *testing.B, sys bench.System, zipf bool) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		res := bench.Run(bench.Point{System: sys, Nodes: 5, WriteRatio: 0.20, Zipf: zipf, Seed: int64(i)}, quick())
		b.ReportMetric(float64(res.Read.Median())/1e3, "rd-p50us")
		b.ReportMetric(float64(res.Read.P99())/1e3, "rd-p99us")
		b.ReportMetric(float64(res.Write.Median())/1e3, "wr-p50us")
		b.ReportMetric(float64(res.Write.P99())/1e3, "wr-p99us")
	}
}

func BenchmarkFig6b_Hermes_uniform(b *testing.B) { benchLatency(b, bench.Hermes, false) }
func BenchmarkFig6b_CRAQ_uniform(b *testing.B)   { benchLatency(b, bench.CRAQ, false) }
func BenchmarkFig6c_Hermes_zipf(b *testing.B)    { benchLatency(b, bench.Hermes, true) }
func BenchmarkFig6c_CRAQ_zipf(b *testing.B)      { benchLatency(b, bench.CRAQ, true) }

// --- Figure 7: scalability across 3/5/7 replicas ---

func BenchmarkFig7_Hermes_n3_w01(b *testing.B) {
	point(b, bench.Point{System: bench.Hermes, Nodes: 3, WriteRatio: 0.01})
}
func BenchmarkFig7_Hermes_n7_w01(b *testing.B) {
	point(b, bench.Point{System: bench.Hermes, Nodes: 7, WriteRatio: 0.01})
}
func BenchmarkFig7_Hermes_n7_w20(b *testing.B) {
	point(b, bench.Point{System: bench.Hermes, Nodes: 7, WriteRatio: 0.20})
}
func BenchmarkFig7_CRAQ_n7_w20(b *testing.B) {
	point(b, bench.Point{System: bench.CRAQ, Nodes: 7, WriteRatio: 0.20})
}
func BenchmarkFig7_ZAB_n7_w20(b *testing.B) {
	point(b, bench.Point{System: bench.ZAB, Nodes: 7, WriteRatio: 0.20})
}

// --- Figure 8: write-only vs object size vs the Derecho-like baseline ---

func BenchmarkFig8_Hermes_32B(b *testing.B) {
	point(b, bench.Point{System: bench.Hermes, Nodes: 5, WriteRatio: 1, ValueSize: 32, PerByte: true})
}
func BenchmarkFig8_Hermes_1KB(b *testing.B) {
	point(b, bench.Point{System: bench.Hermes, Nodes: 5, WriteRatio: 1, ValueSize: 1024, PerByte: true})
}
func BenchmarkFig8_Derecho_32B(b *testing.B) {
	point(b, bench.Point{System: bench.Lockstep, Nodes: 5, WriteRatio: 1, ValueSize: 32, PerByte: true})
}
func BenchmarkFig8_Derecho_1KB(b *testing.B) {
	point(b, bench.Point{System: bench.Lockstep, Nodes: 5, WriteRatio: 1, ValueSize: 1024, PerByte: true})
}

// --- Figure 9: throughput under failure (dip + recovery) ---

func BenchmarkFig9_FailureRecovery(b *testing.B) {
	for i := 0; i < b.N; i++ {
		out := bench.Fig9(bench.Scale{Sessions: 2, Keys: 1 << 12})
		rates := out.Series["5%"]
		pre, dip, rec := 0.0, 0.0, 0.0
		if len(rates) > 25 {
			pre = avgOf(rates[3:9])
			dip = minimum(rates[11:14])
			rec = avgOf(rates[len(rates)-4:])
		}
		b.ReportMetric(pre/1e6, "pre-Mops")
		b.ReportMetric(dip/1e6, "dip-Mops")
		b.ReportMetric(rec/1e6, "rec-Mops")
	}
}

func avgOf(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

func minimum(xs []float64) float64 {
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// --- Live read fast path (§4.1): lock-free local reads on the caller's
// goroutine; quick-scale variant of `hermes-bench -exp reads`. Mops here is
// wall-clock read throughput of the LIVE runtime, hitpct the fast-path hit
// rate. ---

func benchLiveReads(b *testing.B, shards, clients int) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		r := bench.RunReadPoint(shards, clients, 0.95, 40*time.Millisecond, false)
		b.ReportMetric(r.ReadTput()/1e6, "Mops")
		b.ReportMetric(100*r.HitRate(), "hitpct")
	}
}

func BenchmarkReads_W1_C1(b *testing.B)  { benchLiveReads(b, 1, 1) }
func BenchmarkReads_W1_C8(b *testing.B)  { benchLiveReads(b, 1, 8) }
func BenchmarkReads_W4_C8(b *testing.B)  { benchLiveReads(b, 4, 8) }
func BenchmarkReads_W4_C16(b *testing.B) { benchLiveReads(b, 4, 16) }

// --- Ablations (design choices called out in DESIGN.md) ---

func BenchmarkAblationO1_VALElision(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tb := bench.AblationO1(quick())
		_ = tb
	}
}

func BenchmarkAblationO3_EarlyACKs(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tb := bench.AblationO3(quick())
		_ = tb
	}
}

func BenchmarkAblationNoLSC(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tb := bench.AblationNoLSC(quick())
		_ = tb
	}
}
