// Command hermes-vet runs the repo's protocol-invariant analyzers (see
// internal/analysis) over the packages matching the given patterns and exits
// non-zero if any finding survives its //hermesvet:ignore directives.
//
// Usage:
//
//	hermes-vet [-list] [-json] [packages...]
//
// Patterns default to ./... and are resolved by `go list` relative to the
// current directory, so `go run ./cmd/hermes-vet ./...` from the repo root
// checks the whole tree.
//
// With -json, every finding — including ones suppressed by an ignore
// directive — is emitted as one JSON object per line with file, line, col,
// analyzer, message, and ignored fields; the exit code still reflects only
// the surviving findings.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/analysis"
)

func main() {
	list := flag.Bool("list", false, "list the analyzers and exit")
	asJSON := flag.Bool("json", false, "emit findings as JSON lines (includes ignored findings)")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: hermes-vet [-list] [-json] [packages...]\n\nAnalyzers:\n")
		writeAnalyzerListing(flag.CommandLine.Output())
	}
	flag.Parse()
	if *list {
		writeAnalyzerListing(os.Stdout)
		return
	}

	dir, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "hermes-vet:", err)
		os.Exit(2)
	}
	n, err := vet(dir, flag.Args(), os.Stdout, *asJSON)
	if err != nil {
		fmt.Fprintln(os.Stderr, "hermes-vet:", err)
		os.Exit(2)
	}
	if n > 0 {
		fmt.Fprintf(os.Stderr, "hermes-vet: %d finding(s)\n", n)
		os.Exit(1)
	}
}

// writeAnalyzerListing prints one "name  doc" line per registered analyzer.
// Both the -list flag and the usage text go through here so the two can
// never drift apart.
func writeAnalyzerListing(w io.Writer) {
	for _, a := range analysis.All() {
		fmt.Fprintf(w, "  %-12s %s\n", a.Name, a.Doc)
	}
}

// finding is the JSON shape of one diagnostic.
type finding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
	Ignored  bool   `json:"ignored"`
}

func toFinding(d analysis.Diagnostic, ignored bool) finding {
	return finding{
		File:     d.Pos.Filename,
		Line:     d.Pos.Line,
		Col:      d.Pos.Column,
		Analyzer: d.Analyzer,
		Message:  d.Message,
		Ignored:  ignored,
	}
}

// vet loads the packages and prints each diagnostic, returning the count of
// findings that survived their ignore directives (the count that decides the
// exit code). In JSON mode suppressed findings are printed too, marked
// ignored, but do not count.
func vet(dir string, patterns []string, out io.Writer, asJSON bool) (int, error) {
	pkgs, err := analysis.Load(dir, patterns...)
	if err != nil {
		return 0, err
	}
	enc := json.NewEncoder(out)
	total := 0
	for _, pkg := range pkgs {
		res := analysis.RunAnalyzersDetail(pkg, analysis.All())
		for _, d := range res.Kept {
			if asJSON {
				if err := enc.Encode(toFinding(d, false)); err != nil {
					return total, err
				}
			} else {
				fmt.Fprintln(out, d)
			}
			total++
		}
		if asJSON {
			for _, d := range res.Suppressed {
				if err := enc.Encode(toFinding(d, true)); err != nil {
					return total, err
				}
			}
		}
	}
	return total, nil
}
