// Command hermes-vet runs the repo's protocol-invariant analyzers (see
// internal/analysis) over the packages matching the given patterns and exits
// non-zero if any finding survives its //hermesvet:ignore directives.
//
// Usage:
//
//	hermes-vet [-list] [packages...]
//
// Patterns default to ./... and are resolved by `go list` relative to the
// current directory, so `go run ./cmd/hermes-vet ./...` from the repo root
// checks the whole tree.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/analysis"
)

func main() {
	list := flag.Bool("list", false, "list the analyzers and exit")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: hermes-vet [-list] [packages...]\n\nAnalyzers:\n")
		for _, a := range analysis.All() {
			fmt.Fprintf(flag.CommandLine.Output(), "  %-12s %s\n", a.Name, a.Doc)
		}
	}
	flag.Parse()
	if *list {
		for _, a := range analysis.All() {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	dir, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "hermes-vet:", err)
		os.Exit(2)
	}
	n, err := vet(dir, flag.Args(), os.Stdout)
	if err != nil {
		fmt.Fprintln(os.Stderr, "hermes-vet:", err)
		os.Exit(2)
	}
	if n > 0 {
		fmt.Fprintf(os.Stderr, "hermes-vet: %d finding(s)\n", n)
		os.Exit(1)
	}
}

// vet loads the packages and prints each diagnostic, returning the count.
func vet(dir string, patterns []string, out io.Writer) (int, error) {
	pkgs, err := analysis.Load(dir, patterns...)
	if err != nil {
		return 0, err
	}
	total := 0
	for _, pkg := range pkgs {
		for _, d := range analysis.RunAnalyzers(pkg, analysis.All()) {
			fmt.Fprintln(out, d)
			total++
		}
	}
	return total, nil
}
