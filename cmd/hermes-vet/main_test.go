package main

import (
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/analysis"
)

// The repo itself must vet clean — this is the same gate CI applies, kept
// here so `go test ./...` catches a regression before the CI step does.
func TestRepoVetsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole repo")
	}
	var out strings.Builder
	n, err := vet("../..", []string{"./..."}, &out, false)
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Fatalf("hermes-vet found %d finding(s) on the repo:\n%s", n, out.String())
	}
}

// The golden red cases must be visible through the CLI path too, not just
// the analysistest harness.
func TestGoldenTreeHasFindings(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the golden module")
	}
	var out strings.Builder
	n, err := vet("../../internal/analysis/testdata", []string{"./..."}, &out, false)
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("expected findings in the golden tree, got none")
	}
	for _, analyzer := range []string{"eventloop", "atomicfield", "wingscodec", "exhaustive", "determinism", "reftrack", "creditflow", "lockorder"} {
		if !strings.Contains(out.String(), "["+analyzer+"]") {
			t.Errorf("no %s finding surfaced through the CLI:\n%s", analyzer, out.String())
		}
	}
}

// -json emits one object per finding with the documented fields, and marks
// directive-suppressed findings ignored instead of dropping them.
func TestJSONOutput(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the golden module")
	}
	var out strings.Builder
	n, err := vet("../../internal/analysis/testdata", []string{"./reftrack/..."}, &out, true)
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("expected surviving findings in the reftrack golden tree")
	}
	dec := json.NewDecoder(strings.NewReader(out.String()))
	var kept, ignored int
	for dec.More() {
		var f finding
		if err := dec.Decode(&f); err != nil {
			t.Fatalf("decoding finding: %v\noutput:\n%s", err, out.String())
		}
		if f.File == "" || f.Line == 0 || f.Analyzer == "" || f.Message == "" {
			t.Errorf("finding missing fields: %+v", f)
		}
		if f.Ignored {
			ignored++
		} else {
			kept++
		}
	}
	if kept != n {
		t.Errorf("JSON stream has %d kept findings, vet counted %d", kept, n)
	}
	// The golden tree's waived() case suppresses one reftrack finding.
	if ignored == 0 {
		t.Error("expected at least one ignored finding in the JSON stream (the waived golden case)")
	}
}

// Every registered analyzer must appear in the shared listing used by both
// -list and the usage text; the two are the same helper, so this pins that
// neither path can miss an analyzer.
func TestAnalyzerListingComplete(t *testing.T) {
	var out strings.Builder
	writeAnalyzerListing(&out)
	for _, a := range analysis.All() {
		if !strings.Contains(out.String(), a.Name) {
			t.Errorf("analyzer %q missing from the listing:\n%s", a.Name, out.String())
		}
	}
	if got, want := strings.Count(out.String(), "\n"), len(analysis.All()); got != want {
		t.Errorf("listing has %d lines, want one per analyzer (%d)", got, want)
	}
}
