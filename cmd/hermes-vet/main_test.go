package main

import (
	"strings"
	"testing"
)

// The repo itself must vet clean — this is the same gate CI applies, kept
// here so `go test ./...` catches a regression before the CI step does.
func TestRepoVetsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole repo")
	}
	var out strings.Builder
	n, err := vet("../..", []string{"./..."}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Fatalf("hermes-vet found %d finding(s) on the repo:\n%s", n, out.String())
	}
}

// The golden red cases must be visible through the CLI path too, not just
// the analysistest harness.
func TestGoldenTreeHasFindings(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the golden module")
	}
	var out strings.Builder
	n, err := vet("../../internal/analysis/testdata", []string{"./..."}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("expected findings in the golden tree, got none")
	}
	for _, analyzer := range []string{"eventloop", "atomicfield", "wingscodec", "exhaustive", "determinism"} {
		if !strings.Contains(out.String(), "["+analyzer+"]") {
			t.Errorf("no %s finding surfaced through the CLI:\n%s", analyzer, out.String())
		}
	}
}
