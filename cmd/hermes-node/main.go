// Command hermes-node runs one live Hermes replica over TCP (the Wings RPC
// mesh, internal/transport) and serves clients the pipelined wire protocol of
// internal/server on -listen: framed ClientReq/ClientResp messages, many in
// flight per connection, reads served lock-free on the session goroutine.
// Use hermes-cli (or internal/client) to talk to it.
//
// Example 3-replica deployment on one machine:
//
//	hermes-node -id 0 -peers 0=127.0.0.1:7100,1=127.0.0.1:7101,2=127.0.0.1:7102 -listen :8100 &
//	hermes-node -id 1 -peers 0=127.0.0.1:7100,1=127.0.0.1:7101,2=127.0.0.1:7102 -listen :8101 &
//	hermes-node -id 2 -peers 0=127.0.0.1:7100,1=127.0.0.1:7101,2=127.0.0.1:7102 -listen :8102 &
//	hermes-cli -addr 127.0.0.1:8100 SET greeting hello
//	hermes-cli -addr 127.0.0.1:8102 GET greeting
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/cluster"
	"repro/internal/proto"
	"repro/internal/server"
	"repro/internal/transport"
)

func parsePeers(s string) (map[proto.NodeID]string, []proto.NodeID, error) {
	addrs := make(map[proto.NodeID]string)
	var ids []proto.NodeID
	for _, part := range strings.Split(s, ",") {
		kv := strings.SplitN(strings.TrimSpace(part), "=", 2)
		if len(kv) != 2 {
			return nil, nil, fmt.Errorf("bad peer %q (want id=host:port)", part)
		}
		id, err := strconv.ParseUint(kv[0], 10, 8)
		if err != nil {
			return nil, nil, fmt.Errorf("bad peer id %q: %v", kv[0], err)
		}
		addrs[proto.NodeID(id)] = kv[1]
		ids = append(ids, proto.NodeID(id))
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return addrs, ids, nil
}

func main() {
	id := flag.Uint("id", 0, "this node's ID (must appear in -peers)")
	peers := flag.String("peers", "0=127.0.0.1:7100", "comma-separated id=host:port replica addresses")
	listen := flag.String("listen", ":8100", "client-facing listen address (wire protocol)")
	mlt := flag.Duration("mlt", 50*time.Millisecond, "message-loss timeout")
	shards := flag.Int("shards", 0, "protocol engine shards per node; every node must use the same value — set explicitly on heterogeneous machines (0 = one per CPU, capped)")
	window := flag.Int("window", server.DefaultWindow, "pipelining window granted to each client session")
	maxInflight := flag.Int("max-inflight", server.DefaultMaxInflight, "outstanding-request bound that kills a session exceeding it")
	flag.Parse()

	addrs, ids, err := parsePeers(*peers)
	if err != nil {
		log.Fatal(err)
	}
	self := proto.NodeID(*id)
	if _, ok := addrs[self]; !ok {
		log.Fatalf("node id %d not present in -peers", self)
	}

	mesh, err := transport.NewMesh(self, addrs)
	if err != nil {
		log.Fatalf("mesh: %v", err)
	}
	defer mesh.Close()

	w := *shards
	if w <= 0 {
		w = cluster.DefaultShards()
	}
	node := cluster.NewShardedNode(cluster.ShardedConfig{
		ID:     self,
		View:   proto.View{Epoch: 1, Members: ids},
		MLT:    *mlt,
		Shards: w,
	}, mesh)
	defer node.Close()

	srv := server.New(server.Config{
		Backend: node, Window: *window, MaxInflight: *maxInflight,
	})
	defer srv.Close()
	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		log.Fatalf("client listener: %v", err)
	}
	log.Printf("hermes-node %d: replicas=%v clients=%s shards=%d window=%d",
		self, addrs, ln.Addr(), w, *window)
	if err := srv.Serve(ln); err != nil && err != server.ErrServerClosed {
		log.Fatalf("serve: %v", err)
	}
}
