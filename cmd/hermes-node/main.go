// Command hermes-node runs one live Hermes replica over TCP (the Wings RPC
// mesh, internal/transport) and serves clients a line-based text protocol:
//
//	GET <key>
//	SET <key> <value>
//	CAS <key> <expected> <new>     -> OK | FAIL <observed>
//	FAA <key> <delta>              -> OK <prior> | ABORTED
//	QUIT
//
// String keys are hashed to the 8-byte key space with FNV-1a (the paper's
// KVS uses 8-byte keys, §5.2).
//
// Example 3-replica deployment on one machine:
//
//	hermes-node -id 0 -peers 0=127.0.0.1:7100,1=127.0.0.1:7101,2=127.0.0.1:7102 -client :8100 &
//	hermes-node -id 1 -peers 0=127.0.0.1:7100,1=127.0.0.1:7101,2=127.0.0.1:7102 -client :8101 &
//	hermes-node -id 2 -peers 0=127.0.0.1:7100,1=127.0.0.1:7101,2=127.0.0.1:7102 -client :8102 &
//	hermes-cli -addr 127.0.0.1:8100 SET greeting hello
//	hermes-cli -addr 127.0.0.1:8102 GET greeting
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"hash/fnv"
	"log"
	"net"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/cluster"
	"repro/internal/proto"
	"repro/internal/transport"
)

func hashKey(s string) proto.Key {
	if n, err := strconv.ParseUint(s, 10, 64); err == nil {
		return proto.Key(n)
	}
	h := fnv.New64a()
	h.Write([]byte(s))
	return proto.Key(h.Sum64())
}

func parsePeers(s string) (map[proto.NodeID]string, []proto.NodeID, error) {
	addrs := make(map[proto.NodeID]string)
	var ids []proto.NodeID
	for _, part := range strings.Split(s, ",") {
		kv := strings.SplitN(strings.TrimSpace(part), "=", 2)
		if len(kv) != 2 {
			return nil, nil, fmt.Errorf("bad peer %q (want id=host:port)", part)
		}
		id, err := strconv.ParseUint(kv[0], 10, 8)
		if err != nil {
			return nil, nil, fmt.Errorf("bad peer id %q: %v", kv[0], err)
		}
		addrs[proto.NodeID(id)] = kv[1]
		ids = append(ids, proto.NodeID(id))
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return addrs, ids, nil
}

func main() {
	id := flag.Uint("id", 0, "this node's ID (must appear in -peers)")
	peers := flag.String("peers", "0=127.0.0.1:7100", "comma-separated id=host:port replica addresses")
	clientAddr := flag.String("client", ":8100", "client-facing listen address")
	mlt := flag.Duration("mlt", 50*time.Millisecond, "message-loss timeout")
	shards := flag.Int("shards", 0, "protocol engine shards per node; every node must use the same value — set explicitly on heterogeneous machines (0 = one per CPU, capped)")
	flag.Parse()

	addrs, ids, err := parsePeers(*peers)
	if err != nil {
		log.Fatal(err)
	}
	self := proto.NodeID(*id)
	if _, ok := addrs[self]; !ok {
		log.Fatalf("node id %d not present in -peers", self)
	}

	mesh, err := transport.NewMesh(self, addrs)
	if err != nil {
		log.Fatalf("mesh: %v", err)
	}
	defer mesh.Close()

	w := *shards
	if w <= 0 {
		w = cluster.DefaultShards()
	}
	node := cluster.NewShardedNode(cluster.ShardedConfig{
		ID:     self,
		View:   proto.View{Epoch: 1, Members: ids},
		MLT:    *mlt,
		Shards: w,
	}, mesh)
	defer node.Close()

	ln, err := net.Listen("tcp", *clientAddr)
	if err != nil {
		log.Fatalf("client listener: %v", err)
	}
	log.Printf("hermes-node %d: replicas=%v clients=%s shards=%d", self, addrs, ln.Addr(), w)
	for {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		go serveClient(conn, node)
	}
}

// kvNode is the client-facing surface both engine flavours provide
// (*cluster.Node and *cluster.ShardedNode).
type kvNode interface {
	Read(ctx context.Context, key proto.Key) (proto.Value, error)
	Write(ctx context.Context, key proto.Key, val proto.Value) error
	CAS(ctx context.Context, key proto.Key, expect, val proto.Value) (bool, proto.Value, error)
	FAA(ctx context.Context, key proto.Key, delta int64) (int64, error)
}

func serveClient(conn net.Conn, node kvNode) {
	defer conn.Close()
	sc := bufio.NewScanner(conn)
	out := bufio.NewWriter(conn)
	reply := func(format string, args ...any) {
		fmt.Fprintf(out, format+"\n", args...)
		out.Flush()
	}
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) == 0 {
			continue
		}
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		switch strings.ToUpper(fields[0]) {
		case "GET":
			if len(fields) != 2 {
				reply("ERR usage: GET <key>")
				break
			}
			v, err := node.Read(ctx, hashKey(fields[1]))
			if err != nil {
				reply("ERR %v", err)
				break
			}
			reply("OK %s", string(v))
		case "SET":
			if len(fields) < 3 {
				reply("ERR usage: SET <key> <value>")
				break
			}
			val := strings.Join(fields[2:], " ")
			if err := node.Write(ctx, hashKey(fields[1]), proto.Value(val)); err != nil {
				reply("ERR %v", err)
				break
			}
			reply("OK")
		case "CAS":
			if len(fields) != 4 {
				reply("ERR usage: CAS <key> <expected> <new>")
				break
			}
			ok, observed, err := node.CAS(ctx, hashKey(fields[1]), proto.Value(fields[2]), proto.Value(fields[3]))
			switch {
			case err != nil:
				reply("ERR %v", err)
			case ok:
				reply("OK")
			default:
				reply("FAIL %s", string(observed))
			}
		case "FAA":
			if len(fields) != 3 {
				reply("ERR usage: FAA <key> <delta>")
				break
			}
			d, err := strconv.ParseInt(fields[2], 10, 64)
			if err != nil {
				reply("ERR bad delta: %v", err)
				break
			}
			prior, err := node.FAA(ctx, hashKey(fields[1]), d)
			switch err {
			case nil:
				reply("OK %d", prior)
			case cluster.ErrAborted:
				reply("ABORTED")
			default:
				reply("ERR %v", err)
			}
		case "QUIT":
			cancel()
			return
		default:
			reply("ERR unknown command %q", fields[0])
		}
		cancel()
	}
}
