package main

import (
	"net"
	"testing"
	"time"

	"repro/internal/client"
	"repro/internal/cluster"
	"repro/internal/proto"
	"repro/internal/server"
	"repro/internal/transport"
)

func TestParsePeers(t *testing.T) {
	addrs, ids, err := parsePeers("1=127.0.0.1:7001, 0=127.0.0.1:7000,2=127.0.0.1:7002")
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 3 || ids[0] != 0 || ids[2] != 2 {
		t.Fatalf("ids=%v (must be sorted)", ids)
	}
	if addrs[1] != "127.0.0.1:7001" {
		t.Fatalf("addrs=%v", addrs)
	}
	for _, bad := range []string{"x", "a=1=2extra,", "300=127.0.0.1:1"} {
		if _, _, err := parsePeers(bad); err == nil {
			t.Fatalf("accepted %q", bad)
		}
	}
}

// End-to-end over the exact stack main assembles: a real TCP mesh (single
// replica), a sharded node, the wire server, and the pipelined client.
func TestWireServingStack(t *testing.T) {
	mesh, err := transport.NewMesh(0, map[proto.NodeID]string{0: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	defer mesh.Close()
	node := cluster.NewShardedNode(cluster.ShardedConfig{
		ID: 0, View: proto.View{Epoch: 1, Members: []proto.NodeID{0}}, Shards: 2,
	}, mesh)
	defer node.Close()
	srv := server.New(server.Config{Backend: node})
	defer srv.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)

	c, err := client.Dial(ln.Addr().String(), client.Config{DialTimeout: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if err := c.Write(proto.Key(1), []byte("hello world")); err != nil {
		t.Fatal(err)
	}
	if v, err := c.Read(proto.Key(1)); err != nil || string(v) != "hello world" {
		t.Fatalf("read=%q err=%v", v, err)
	}
	if ok, obs, err := c.CAS(proto.Key(1), []byte("wrong"), []byte("new")); err != nil || ok || string(obs) != "hello world" {
		t.Fatalf("cas swapped=%v obs=%q err=%v", ok, obs, err)
	}
	if err := c.Write(proto.Key(2), proto.EncodeInt64(0)); err != nil {
		t.Fatal(err)
	}
	if prior, err := c.FAA(proto.Key(2), 5); err != nil || prior != 0 {
		t.Fatalf("faa prior=%d err=%v", prior, err)
	}
	if prior, err := c.FAA(proto.Key(2), 2); err != nil || prior != 5 {
		t.Fatalf("faa2 prior=%d err=%v", prior, err)
	}
}
