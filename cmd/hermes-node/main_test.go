package main

import (
	"bufio"
	"net"
	"strings"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/proto"
)

func TestHashKeyNumericPassthrough(t *testing.T) {
	if hashKey("42") != 42 {
		t.Fatal("numeric keys must map to themselves")
	}
	if hashKey("18446744073709551615") != proto.Key(^uint64(0)) {
		t.Fatal("max uint64 key")
	}
}

func TestHashKeyStringsStableAndSpread(t *testing.T) {
	a, b := hashKey("user:1"), hashKey("user:2")
	if a == b {
		t.Fatal("distinct strings collided (astronomically unlikely)")
	}
	if a != hashKey("user:1") {
		t.Fatal("hash not stable")
	}
}

func TestParsePeers(t *testing.T) {
	addrs, ids, err := parsePeers("1=127.0.0.1:7001, 0=127.0.0.1:7000,2=127.0.0.1:7002")
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 3 || ids[0] != 0 || ids[2] != 2 {
		t.Fatalf("ids=%v (must be sorted)", ids)
	}
	if addrs[1] != "127.0.0.1:7001" {
		t.Fatalf("addrs=%v", addrs)
	}
	for _, bad := range []string{"x", "a=1=2extra,", "300=127.0.0.1:1"} {
		if _, _, err := parsePeers(bad); err == nil {
			t.Fatalf("accepted %q", bad)
		}
	}
}

// End-to-end text protocol against a single-replica node.
func TestServeClientProtocol(t *testing.T) {
	tr := cluster.NewChanTransport([]proto.NodeID{0})
	defer tr.Close()
	node := cluster.NewNode(cluster.NodeConfig{
		ID: 0, View: proto.View{Epoch: 1, Members: []proto.NodeID{0}},
	}, tr)
	defer node.Close()

	server, client := net.Pipe()
	go serveClient(server, node)
	defer client.Close()
	rd := bufio.NewReader(client)
	send := func(line string) string {
		t.Helper()
		client.SetDeadline(time.Now().Add(5 * time.Second))
		if _, err := client.Write([]byte(line + "\n")); err != nil {
			t.Fatal(err)
		}
		resp, err := rd.ReadString('\n')
		if err != nil {
			t.Fatal(err)
		}
		return strings.TrimSpace(resp)
	}

	if got := send("SET greeting hello world"); got != "OK" {
		t.Fatalf("SET: %q", got)
	}
	if got := send("GET greeting"); got != "OK hello world" {
		t.Fatalf("GET: %q", got)
	}
	if got := send("CAS greeting wrong new"); !strings.HasPrefix(got, "FAIL hello") {
		t.Fatalf("CAS fail: %q", got)
	}
	if got := send("FAA counter 5"); got != "OK 0" {
		t.Fatalf("FAA: %q", got)
	}
	if got := send("FAA counter 2"); got != "OK 5" {
		t.Fatalf("FAA2: %q", got)
	}
	if got := send("BOGUS"); !strings.HasPrefix(got, "ERR") {
		t.Fatalf("BOGUS: %q", got)
	}
	if got := send("GET"); !strings.HasPrefix(got, "ERR usage") {
		t.Fatalf("GET no args: %q", got)
	}
}
