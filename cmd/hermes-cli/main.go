// Command hermes-cli sends one command to a hermes-node client port and
// prints the reply.
//
//	hermes-cli -addr 127.0.0.1:8100 SET user:1 alice
//	hermes-cli -addr 127.0.0.1:8101 GET user:1
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"strings"
	"time"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8100", "hermes-node client address")
	timeout := flag.Duration("timeout", 10*time.Second, "request timeout")
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: hermes-cli [-addr host:port] GET|SET|CAS|FAA args...")
		os.Exit(2)
	}
	conn, err := net.DialTimeout("tcp", *addr, *timeout)
	if err != nil {
		log.Fatalf("dial: %v", err)
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(*timeout))
	if _, err := fmt.Fprintln(conn, strings.Join(flag.Args(), " ")); err != nil {
		log.Fatalf("send: %v", err)
	}
	line, err := bufio.NewReader(conn).ReadString('\n')
	if err != nil {
		log.Fatalf("recv: %v", err)
	}
	fmt.Print(line)
	if strings.HasPrefix(line, "ERR") {
		os.Exit(1)
	}
}
