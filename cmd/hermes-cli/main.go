// Command hermes-cli sends one command to a hermes-node -listen port over
// the wire protocol (internal/client) and prints the reply.
//
//	hermes-cli -addr 127.0.0.1:8100 SET user:1 alice
//	hermes-cli -addr 127.0.0.1:8101 GET user:1
//	hermes-cli -addr 127.0.0.1:8100 CAS user:1 alice bob   -> OK | FAIL <observed>
//	hermes-cli -addr 127.0.0.1:8100 FAA counter 5          -> OK <prior> | ABORTED
//
// String keys are hashed to the 8-byte key space with FNV-1a (the paper's
// KVS uses 8-byte keys, §5.2); decimal keys map to themselves.
package main

import (
	"flag"
	"fmt"
	"hash/fnv"
	"log"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/client"
	"repro/internal/proto"
)

func hashKey(s string) proto.Key {
	if n, err := strconv.ParseUint(s, 10, 64); err == nil {
		return proto.Key(n)
	}
	h := fnv.New64a()
	h.Write([]byte(s))
	return proto.Key(h.Sum64())
}

func main() {
	addr := flag.String("addr", "127.0.0.1:8100", "hermes-node -listen address")
	timeout := flag.Duration("timeout", 10*time.Second, "request timeout")
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: hermes-cli [-addr host:port] GET|SET|CAS|FAA args...")
		os.Exit(2)
	}

	c, err := client.Dial(*addr, client.Config{DialTimeout: *timeout})
	if err != nil {
		log.Fatalf("dial: %v", err)
	}
	defer c.Close()

	// The server has no per-op timeout (a read of a never-written key stalls
	// by design until the key validates), so the deadline lives here: closing
	// the client fails the in-flight op with ErrClosed.
	timer := time.AfterFunc(*timeout, func() {
		fmt.Fprintln(os.Stderr, "ERR timeout")
		os.Exit(1)
	})
	defer timer.Stop()

	out, err := run(c, flag.Args())
	if err != nil {
		log.Fatalf("ERR %v", err)
	}
	fmt.Println(out)
}

// run executes one parsed command against the session and renders the reply
// in the traditional cli vocabulary (OK / FAIL <observed> / ABORTED).
func run(c *client.Client, args []string) (string, error) {
	cmd := strings.ToUpper(args[0])
	switch cmd {
	case "GET":
		if len(args) != 2 {
			return "", fmt.Errorf("usage: GET <key>")
		}
		v, err := c.Read(hashKey(args[1]))
		if err != nil {
			return "", err
		}
		return "OK " + string(v), nil
	case "SET":
		if len(args) < 3 {
			return "", fmt.Errorf("usage: SET <key> <value>")
		}
		val := strings.Join(args[2:], " ")
		if err := c.Write(hashKey(args[1]), proto.Value(val)); err != nil {
			return "", err
		}
		return "OK", nil
	case "CAS":
		if len(args) != 4 {
			return "", fmt.Errorf("usage: CAS <key> <expected> <new>")
		}
		ok, observed, err := c.CAS(hashKey(args[1]), proto.Value(args[2]), proto.Value(args[3]))
		switch {
		case err != nil:
			return "", err
		case ok:
			return "OK", nil
		default:
			return "FAIL " + string(observed), nil
		}
	case "FAA":
		if len(args) != 3 {
			return "", fmt.Errorf("usage: FAA <key> <delta>")
		}
		d, err := strconv.ParseInt(args[2], 10, 64)
		if err != nil {
			return "", fmt.Errorf("bad delta: %v", err)
		}
		prior, err := c.FAA(hashKey(args[1]), d)
		switch err {
		case nil:
			return fmt.Sprintf("OK %d", prior), nil
		case client.ErrAborted:
			return "ABORTED", nil
		default:
			return "", err
		}
	default:
		return "", fmt.Errorf("unknown command %q", args[0])
	}
}
