package main

import (
	"net"
	"testing"

	"repro/internal/client"
	"repro/internal/cluster"
	"repro/internal/proto"
	"repro/internal/server"
)

func TestHashKeyNumericPassthrough(t *testing.T) {
	if hashKey("42") != 42 {
		t.Fatal("numeric keys must map to themselves")
	}
	if hashKey("18446744073709551615") != proto.Key(^uint64(0)) {
		t.Fatal("max uint64 key")
	}
}

func TestHashKeyStringsStableAndSpread(t *testing.T) {
	a, b := hashKey("user:1"), hashKey("user:2")
	if a == b {
		t.Fatal("distinct strings collided (astronomically unlikely)")
	}
	if a != hashKey("user:1") {
		t.Fatal("hash not stable")
	}
}

// The cli command vocabulary against a real served group.
func TestRunCommands(t *testing.T) {
	l := cluster.NewShardedLocal(cluster.LocalConfig{N: 3}, 2)
	defer l.Close()
	srv := server.New(server.Config{Backend: l.Nodes[0]})
	defer srv.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	c, err := client.Dial(ln.Addr().String(), client.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	check := func(args []string, want string) {
		t.Helper()
		got, err := run(c, args)
		if err != nil {
			t.Fatalf("%v: %v", args, err)
		}
		if got != want {
			t.Fatalf("%v: got %q, want %q", args, got, want)
		}
	}
	check([]string{"SET", "greeting", "hello", "world"}, "OK")
	check([]string{"GET", "greeting"}, "OK hello world")
	check([]string{"CAS", "greeting", "wrong", "new"}, "FAIL hello world")
	check([]string{"CAS", "greeting", "hello world", "new"}, "OK")
	check([]string{"SET", "counter", string(proto.EncodeInt64(5))}, "OK")
	check([]string{"FAA", "counter", "2"}, "OK 5")
	check([]string{"FAA", "counter", "-3"}, "OK 7")

	for _, bad := range [][]string{{"GET"}, {"SET", "k"}, {"CAS", "k", "a"}, {"FAA", "k", "x"}, {"BOGUS"}} {
		if _, err := run(c, bad); err == nil {
			t.Fatalf("accepted %v", bad)
		}
	}
}
