// Command hermes-bench regenerates the paper's evaluation (§6): every
// figure and table, plus the ablation benches described in DESIGN.md.
//
// Usage:
//
//	hermes-bench -exp all            # everything (takes a while)
//	hermes-bench -exp fig5a          # one experiment
//	hermes-bench -exp fig9 -quick    # reduced scale
//
// Experiments: fig5a fig5b fig6a fig6b fig6c fig7 fig8 fig9 table2 shards
// reads reconfig clients gray values ablation-o1 ablation-o2 ablation-o3
// ablation-nolsc
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/bench"
)

func main() {
	exp := flag.String("exp", "all", "experiment to run (comma-separated, or 'all')")
	quick := flag.Bool("quick", false, "reduced scale for smoke runs")
	flag.Parse()

	sc := bench.FullScale()
	if *quick {
		sc = bench.QuickScale()
	}

	runners := []struct {
		name string
		note string
		fn   func() fmt.Stringer
	}{
		{"table2", "Feature comparison of evaluated systems (paper Table 2)",
			func() fmt.Stringer { return bench.Table2() }},
		{"fig5a", "Throughput vs write ratio, uniform, 5 nodes (paper Fig. 5a)",
			func() fmt.Stringer { return bench.Fig5a(sc) }},
		{"fig5b", "Throughput vs write ratio, Zipfian 0.99, 5 nodes (paper Fig. 5b)",
			func() fmt.Stringer { return bench.Fig5b(sc) }},
		{"fig6a", "Latency vs throughput at 5% writes (paper Fig. 6a)",
			func() fmt.Stringer { return bench.Fig6a(sc) }},
		{"fig6b", "Read/write latency vs write ratio, uniform (paper Fig. 6b)",
			func() fmt.Stringer { return bench.Fig6b(sc) }},
		{"fig6c", "Read/write latency vs write ratio, Zipfian 0.99 (paper Fig. 6c)",
			func() fmt.Stringer { return bench.Fig6c(sc) }},
		{"fig7", "Scalability across 3/5/7 replicas (paper Fig. 7)",
			func() fmt.Stringer { return bench.Fig7(sc) }},
		{"fig8", "Write-only throughput vs object size vs Derecho-like (paper Fig. 8)",
			func() fmt.Stringer { return bench.Fig8(sc) }},
		{"fig9", "Throughput under a node failure with RM recovery (paper Fig. 9)",
			func() fmt.Stringer { r := bench.Fig9(sc); return r.Table }},
		{"shards", "Write-throughput scaling across per-node engine shards, 1->8 workers (§4.1)",
			func() fmt.Stringer { return bench.ShardScaling(sc) }},
		{"reads", "LIVE lock-free read fast path: throughput vs client goroutines with hit rate (§4.1)",
			func() fmt.Stringer { return bench.ReadScaling(sc) }},
		{"reconfig", "LIVE reconfiguration availability: per-shard install storms + staggered vs simultaneous full-view rollouts (§3.4-3.6)",
			func() fmt.Stringer { return bench.ReconfigAvailability(sc) }},
		{"clients", "LIVE wire serving layer: pipelined TCP sessions vs the in-process fast path, with p50/p99/p999 (§6)",
			func() fmt.Stringer { return bench.Clients(sc) }},
		{"gray", "Gray failures on the chaos harness: asym partitions, slow-but-alive, clock skew, burst reorder, epoch-gossip healing",
			func() fmt.Stringer { return bench.Gray(sc) }},
		{"values", "Zero-copy value path: allocs/op + ops/s for INV adoption, retained reads and response encode; writes " + bench.ValuesJSON,
			func() fmt.Stringer { return bench.Values(sc) }},
		{"ablation-o1", "O1: VAL elision savings (paper §3.3)",
			func() fmt.Stringer { return bench.AblationO1(sc) }},
		{"ablation-o2", "O2: virtual node ID fairness (paper §3.3)",
			func() fmt.Stringer { return bench.AblationO2(sc) }},
		{"ablation-o3", "O3: broadcast-ACK early validation (paper §3.3)",
			func() fmt.Stringer { return bench.AblationO3(sc) }},
		{"ablation-nolsc", "§8: reads without loosely synchronized clocks",
			func() fmt.Stringer { return bench.AblationNoLSC(sc) }},
	}

	want := map[string]bool{}
	all := *exp == "all"
	for _, e := range strings.Split(*exp, ",") {
		want[strings.TrimSpace(e)] = true
	}
	ran := 0
	for _, r := range runners {
		if !all && !want[r.name] {
			continue
		}
		ran++
		fmt.Printf("=== %s: %s ===\n", r.name, r.note)
		start := time.Now()
		fmt.Println(r.fn().String())
		fmt.Printf("(%s in %v)\n\n", r.name, time.Since(start).Round(time.Millisecond))
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "unknown experiment %q; see -h\n", *exp)
		os.Exit(2)
	}
}
